#include "scenario/population.hpp"

#include <algorithm>
#include <cmath>

namespace ipfs::scenario {

using common::kDay;
using common::kHour;
using common::kMinute;
using common::kSecond;

Population::Population(const PopulationSpec& spec, common::SimDuration duration,
                       common::Rng rng)
    : spec_(spec), rng_(rng), ips_(rng.child(0x1b5)) {
  build(duration);
}

std::uint32_t Population::scaled(std::uint32_t base) const {
  const auto value = static_cast<std::uint32_t>(
      std::llround(static_cast<double>(base) * spec_.scale));
  return base > 0 && spec_.scale > 0.0 ? std::max<std::uint32_t>(value, 1) : value;
}

std::size_t Population::count(Category category) const {
  return static_cast<std::size_t>(
      std::count_if(peers_.begin(), peers_.end(),
                    [category](const RemotePeer& p) { return p.category == category; }));
}

std::size_t Population::dht_server_count() const {
  return static_cast<std::size_t>(std::count_if(
      peers_.begin(), peers_.end(), [](const RemotePeer& p) { return p.dht_server; }));
}

RemotePeer& Population::emplace_peer(Category category, common::Rng& rng) {
  RemotePeer peer;
  peer.index = static_cast<std::uint32_t>(peers_.size());
  peer.category = category;
  peer.pid = p2p::PeerId::random(rng);
  peer.ip = ips_.unique_v4();  // may be overridden by shared-IP policies
  peer.port = 4001;
  peers_.push_back(std::move(peer));
  return peers_.back();
}

void Population::assign_one_shot_window(RemotePeer& peer, common::SimDuration duration,
                                        common::Rng& rng) {
  const CategoryParams& params = spec_.params(peer.category);
  peer.session_start =
      static_cast<common::SimTime>(rng.uniform(0.0, static_cast<double>(duration)));
  common::SimDuration length =
      static_cast<common::SimDuration>(rng.exponential(
          static_cast<double>(std::max<common::SimDuration>(params.mean_session, 1))));
  if (peer.category == Category::kNormalUser) {
    // Normal users sit between the 2 h and 24 h class boundaries.
    length = std::clamp<common::SimDuration>(length, 2 * kHour + 10 * kMinute,
                                             22 * kHour);
  } else {
    length = std::max<common::SimDuration>(length, 30 * kSecond);
  }
  peer.session_length = length;
}

void Population::build(common::SimDuration duration) {
  common::Rng rng = rng_.child(0xa11);
  const double days = static_cast<double>(duration) / static_cast<double>(kDay);
  const auto per_day = [&](std::uint32_t base_per_day) {
    return static_cast<std::uint32_t>(
        std::llround(static_cast<double>(scaled(base_per_day)) * days));
  };

  // --- Hydra heads: 11 IP clusters (9x100, 98, 28) + 2 heads co-located
  // with two go-ipfs nodes on a shared IP (§V-A).
  {
    const std::uint32_t total = scaled(spec_.counts.hydra_heads);
    std::uint32_t placed = 0;
    int pool_index = 0;
    // Reserve 2 heads for the shared go-ipfs IP when the population is big
    // enough to express the anomaly.
    const std::uint32_t co_located = total >= 30 ? 2 : 0;
    const auto shared_ip = ips_.shared_v4("hydra-with-goipfs");
    while (placed < total - co_located) {
      const std::uint32_t pool_target = [&]() -> std::uint32_t {
        if (pool_index < 9) return scaled(100);
        if (pool_index == 9) return scaled(98);
        return scaled(28);
      }();
      const auto pool_ip =
          ips_.shared_v4("hydra-dc-" + std::to_string(pool_index));
      for (std::uint32_t i = 0; i < pool_target && placed < total - co_located; ++i) {
        RemotePeer& peer = emplace_peer(Category::kHydra, rng);
        peer.ip = pool_ip;
        peer.port = static_cast<std::uint16_t>(3001 + i);
        peer.agent = "hydra-booster/0.7.4";
        peer.dht_server = true;
        ++placed;
      }
      ++pool_index;
      if (pool_index > 64) break;  // scaled populations: stop splitting
    }
    for (std::uint32_t i = 0; i < co_located; ++i) {
      RemotePeer& peer = emplace_peer(Category::kHydra, rng);
      peer.ip = shared_ip;
      peer.port = static_cast<std::uint16_t>(3001 + i);
      peer.agent = "hydra-booster/0.7.4";
      peer.dht_server = true;
    }
    // The two go-ipfs nodes sharing that IP.
    if (co_located > 0) {
      for (int i = 0; i < 2; ++i) {
        RemotePeer& peer = emplace_peer(Category::kCoreServer, rng);
        peer.ip = shared_ip;
        peer.port = static_cast<std::uint16_t>(4001 + i);
        peer.agent = sample_go_ipfs_agent(rng);
        peer.dht_server = true;
      }
    }
  }

  // --- Core servers (always-on go-ipfs DHT servers).
  for (std::uint32_t i = 0; i < scaled(spec_.counts.core_servers); ++i) {
    RemotePeer& peer = emplace_peer(Category::kCoreServer, rng);
    peer.agent = sample_go_ipfs_agent(rng);
    peer.dht_server = true;
  }

  // --- Core clients (the always-on user base).
  for (std::uint32_t i = 0; i < scaled(spec_.counts.core_clients); ++i) {
    RemotePeer& peer = emplace_peer(Category::kCoreClient, rng);
    peer.agent = rng.bernoulli(0.90) ? sample_go_ipfs_agent(rng)
                                     : sample_other_agent(rng);
    peer.dht_server = false;
  }

  // --- Normal users: one multi-hour session; 9 % run as servers.
  for (std::uint32_t i = 0; i < scaled(spec_.counts.normal_users); ++i) {
    RemotePeer& peer = emplace_peer(Category::kNormalUser, rng);
    peer.agent = rng.bernoulli(0.85) ? sample_go_ipfs_agent(rng)
                                     : sample_other_agent(rng);
    peer.dht_server = rng.bernoulli(0.09);
    assign_one_shot_window(peer, duration, rng);
  }

  // --- Light servers, including the disguised storm block: go-ipfs v0.8.0
  // agents announcing sbptp instead of bitswap (§IV-B).
  {
    const std::uint32_t total = scaled(spec_.counts.light_servers);
    const std::uint32_t storm = std::min(scaled(spec_.counts.disguised_storm), total);
    for (std::uint32_t i = 0; i < total; ++i) {
      RemotePeer& peer = emplace_peer(Category::kLightServer, rng);
      peer.dht_server = true;
      if (i < storm) {
        peer.agent = "go-ipfs/0.8.0/ce3f20a";  // uniform botnet build
      } else {
        peer.agent = sample_go_ipfs_agent(rng);
      }
    }
  }

  // --- Light clients.
  for (std::uint32_t i = 0; i < scaled(spec_.counts.light_clients); ++i) {
    RemotePeer& peer = emplace_peer(Category::kLightClient, rng);
    peer.agent = rng.bernoulli(0.40) ? sample_go_ipfs_agent(rng)
                                     : sample_other_agent(rng);
    peer.dht_server = false;
  }

  // --- Crawler agents.
  for (std::uint32_t i = 0; i < scaled(spec_.counts.crawlers); ++i) {
    RemotePeer& peer = emplace_peer(Category::kCrawler, rng);
    peer.agent = rng.bernoulli(0.5) ? "nebula-crawler/1.1.0" : "ipfs crawler";
    peer.dht_server = false;
  }

  // --- One-time arrivals (scaled per day).
  for (std::uint32_t i = 0; i < per_day(spec_.counts.one_time_per_day); ++i) {
    RemotePeer& peer = emplace_peer(Category::kOneTime, rng);
    peer.agent = rng.bernoulli(0.85) ? sample_go_ipfs_agent(rng)
                                     : sample_other_agent(rng);
    peer.dht_server = rng.bernoulli(0.32);
    assign_one_shot_window(peer, duration, rng);
  }

  // --- Ephemeral arrivals: gone before identify completes ("missing").
  for (std::uint32_t i = 0; i < per_day(spec_.counts.ephemeral_per_day); ++i) {
    RemotePeer& peer = emplace_peer(Category::kEphemeral, rng);
    peer.agent.clear();
    peer.dht_server = false;
    assign_one_shot_window(peer, duration, rng);
  }

  // --- The rotating-PID operator: every PID shares one IP, one agent, one
  // protocol set (the paper's 2'156-PID group).
  {
    const auto rotator_ip = ips_.shared_v4("rotating-operator");
    const std::string rotator_agent = "go-ipfs/0.11.0/9e3b7a11";
    for (std::uint32_t i = 0; i < per_day(spec_.counts.rotating_pids_per_day); ++i) {
      RemotePeer& peer = emplace_peer(Category::kRotatingPid, rng);
      peer.ip = rotator_ip;
      peer.agent = rotator_agent;
      peer.dht_server = false;
      assign_one_shot_window(peer, duration, rng);
      // Rotation is sequential: spread starts evenly, not uniformly.
      peer.session_start = static_cast<common::SimTime>(
          (static_cast<double>(i) + rng.uniform()) /
          std::max(1.0, static_cast<double>(per_day(spec_.counts.rotating_pids_per_day))) *
          static_cast<double>(duration));
    }
  }

  // --- The lone go-ethereum curiosity.
  for (std::uint32_t i = 0; i < spec_.counts.ethereum_nodes; ++i) {
    RemotePeer& peer = emplace_peer(Category::kEthereum, rng);
    peer.agent = "go-ethereum/v1.10.13-stable";
    peer.dht_server = false;
  }

  // Protocol sets (needs final agent + server flag).
  for (RemotePeer& peer : peers_) {
    if (peer.protocols.empty()) {
      peer.protocols = protocols_for(peer.category, peer.dht_server, peer.agent, rng);
    }
  }

  // A slice of the population is dual-homed (laptop + mobile uplink, or a
  // churning consumer address): their second address is what makes §V-A's
  // group count smaller than its IP count (47'516 < 56'536).
  for (RemotePeer& peer : peers_) {
    const double multi_ip_probability = [&] {
      switch (peer.category) {
        case Category::kCoreClient: return 0.10;
        case Category::kNormalUser: return 0.10;
        case Category::kOneTime: return 0.08;
        default: return 0.0;
      }
    }();
    if (multi_ip_probability > 0.0 && rng.bernoulli(multi_ip_probability)) {
      peer.alt_ip = ips_.unique_v4();
      peer.has_alt_ip = true;
    }
  }

  assign_nat_groups(rng);
}

void Population::assign_nat_groups(common::Rng& rng) {
  // Collect peers eligible for shared household/cloud IPs.
  std::vector<std::uint32_t> eligible;
  for (const RemotePeer& peer : peers_) {
    switch (peer.category) {
      case Category::kCoreClient:
      case Category::kNormalUser:
      case Category::kOneTime:
      case Category::kLightClient:
        eligible.push_back(peer.index);
        break;
      default:
        break;
    }
  }
  // Deterministic shuffle.
  for (std::size_t i = eligible.size(); i > 1; --i) {
    std::swap(eligible[i - 1], eligible[rng.uniform_u64(i)]);
  }
  std::size_t cursor = 0;
  const std::uint32_t groups = scaled(spec_.counts.nat_groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(
        spec_.counts.nat_group_min, spec_.counts.nat_group_max));
    if (cursor + size > eligible.size()) break;
    const auto ip = ips_.shared_v4("nat-" + std::to_string(g));
    for (std::size_t i = 0; i < size; ++i) {
      peers_[eligible[cursor++]].ip = ip;
    }
  }
}

}  // namespace ipfs::scenario
