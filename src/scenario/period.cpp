#include "scenario/period.hpp"

namespace ipfs::scenario {

using common::kDay;
using common::kHour;

PeriodSpec PeriodSpec::P0() {
  PeriodSpec spec;
  spec.name = "P0";
  spec.dates = "2021-12-03 - 2021-12-06";
  spec.duration = 3 * kDay;
  spec.go_low_water = 600;
  spec.go_high_water = 900;
  spec.hydra_heads = 3;
  spec.hydra_low_water = 1200;
  spec.hydra_high_water = 1800;
  return spec;
}

PeriodSpec PeriodSpec::P1() {
  PeriodSpec spec;
  spec.name = "P1";
  spec.dates = "2021-12-09 - 2021-12-10";
  spec.duration = 1 * kDay;
  spec.go_low_water = 2000;
  spec.go_high_water = 4000;
  spec.hydra_heads = 2;
  spec.hydra_low_water = 2000;
  spec.hydra_high_water = 4000;
  return spec;
}

PeriodSpec PeriodSpec::P2() {
  PeriodSpec spec;
  spec.name = "P2";
  spec.dates = "2021-12-13 - 2021-12-14";
  spec.duration = 1 * kDay;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 2;
  spec.hydra_low_water = 18000;
  spec.hydra_high_water = 20000;
  return spec;
}

PeriodSpec PeriodSpec::P3() {
  PeriodSpec spec;
  spec.name = "P3";
  spec.dates = "2022-02-16 - 2022-02-17";
  spec.duration = 1 * kDay;
  spec.go_ipfs_mode = dht::Mode::kClient;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 0;
  return spec;
}

PeriodSpec PeriodSpec::P4() {
  PeriodSpec spec;
  spec.name = "P4";
  spec.dates = "2021-12-10 - 2021-12-13";
  spec.duration = 3 * kDay;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 0;
  return spec;
}

PeriodSpec PeriodSpec::Long14d() {
  PeriodSpec spec;
  spec.name = "LONG14D";
  spec.dates = "2022-03-29 - 2022-04-12";
  spec.duration = 14 * kDay;
  spec.go_low_water = 18000;
  spec.go_high_water = 20000;
  spec.hydra_heads = 0;
  return spec;
}

std::vector<PeriodSpec> PeriodSpec::table1() {
  return {P0(), P1(), P2(), P3(), P4()};
}

}  // namespace ipfs::scenario
