#include "scenario/period.hpp"

#include "scenario/scenario_spec.hpp"

namespace ipfs::scenario {

// The period data lives in the builtin scenario catalogue
// (scenario_spec.cpp) so the compiled presets and the checked-in
// scenarios/*.json files share one source of truth; these accessors are
// compatibility wrappers.

// .value() turns a renamed/removed builtin into a loud
// std::bad_optional_access instead of undefined behaviour.
PeriodSpec PeriodSpec::P0() { return ScenarioSpec::builtin("p0").value().period; }
PeriodSpec PeriodSpec::P1() { return ScenarioSpec::builtin("p1").value().period; }
PeriodSpec PeriodSpec::P2() { return ScenarioSpec::builtin("p2").value().period; }
PeriodSpec PeriodSpec::P3() { return ScenarioSpec::builtin("p3").value().period; }
PeriodSpec PeriodSpec::P4() { return ScenarioSpec::builtin("p4").value().period; }
PeriodSpec PeriodSpec::Long14d() {
  return ScenarioSpec::builtin("long14d").value().period;
}

std::vector<PeriodSpec> PeriodSpec::table1() {
  return {P0(), P1(), P2(), P3(), P4()};
}

}  // namespace ipfs::scenario
