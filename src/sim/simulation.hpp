// Discrete-event simulation engine.
//
// A `Simulation` owns a virtual clock and an event queue.  Events at equal
// timestamps execute in scheduling order (FIFO), which together with the
// seeded RNG tree makes every run bit-reproducible (DESIGN.md §5).
//
// The queue is a hierarchical timing wheel with arena-allocated records
// (sim::LadderQueue): amortized O(1) enqueue/dequeue/cancel with the exact
// pop order of the original binary heap — see DESIGN.md §12 for the
// structure and the determinism contract.  The scheduling and dispatch paths
// are defined inline here; they are the hottest code in the simulator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>

#include "common/sim_time.hpp"
#include "sim/event_queue.hpp"

namespace ipfs::sim {

using common::SimDuration;
using common::SimTime;

/// Identifies a scheduled event or periodic task for cancellation.  Encodes
/// (arena generation, arena slot); a completed or never-issued id never
/// aliases a live task.
using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTask = 0;

/// Single-threaded discrete-event simulator.
///
/// Thread confinement is the concurrency contract (DESIGN.md §7): a
/// Simulation has no internal synchronisation and must only ever be
/// touched from one thread, but *distinct* Simulations share nothing, so
/// independent runs may execute on as many threads as there are cores
/// (see `runtime::ParallelTrialRunner`).
class Simulation {
 public:
  using Action = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `when` (clamped to now()).
  TaskId schedule_at(SimTime when, Action action) {
    return queue_.insert(std::max(when, now_), 0, std::move(action));
  }

  /// Schedule `action` after `delay` (clamped to >= 0).
  TaskId schedule_after(SimDuration delay, Action action) {
    return queue_.insert(now_ + std::max<SimDuration>(delay, 0), 0,
                         std::move(action));
  }

  /// Schedule `action` every `interval`, first firing after `initial_delay`
  /// (defaults to one full interval when not given).  Runs until cancelled.
  ///
  /// The action is invoked in place across firings (it is moved into the
  /// queue once, never copied per firing), so captured state persists
  /// between invocations.  Determinism-sensitive callers keep their state in
  /// the RNG tree / simulation state, not in mutable captures.
  TaskId schedule_every(SimDuration interval, Action action,
                        std::optional<SimDuration> initial_delay = std::nullopt) {
    interval = std::max<SimDuration>(interval, 1);
    const SimDuration first =
        std::max<SimDuration>(initial_delay.value_or(interval), 0);
    return queue_.insert(now_ + first, interval, std::move(action));
  }

  /// Cancel a pending one-shot event or periodic task.  Cancelling an
  /// already-executed or unknown id is an O(1) no-op; cancelling a live task
  /// destroys its closure immediately (no dead closures accumulate) and the
  /// small arena record is reaped at its scheduled time.  Returns true when
  /// a live task was cancelled, false for the no-op cases.
  bool cancel(TaskId id) {
    // Keep the closure alive when a task cancels itself mid-invoke; step()
    // reaps it on return.
    return queue_.cancel(id, /*keep_action=*/id == executing_);
  }

  /// Execute the next event, if any.  Returns false when the queue is empty.
  bool step() {
    for (;;) {
      const auto [when, slot] = queue_.pop_min();
      if (slot == LadderQueue::kNil) {
        // Reaping cancelled records advances the wheel anchor without
        // advancing the clock; re-anchor at the clock so a later schedule
        // at a time before the reaped records is legal again.
        queue_.reset_anchor(now_);
        return false;
      }
      const std::uint32_t meta = queue_.meta(slot);
      if (meta & LadderQueue::kCancelledBit) {
        // Lazy reap: cancelled records stay queued (their closure already
        // destroyed) until their scheduled time, then the slot is recycled.
        queue_.release(slot);
        continue;
      }
      now_ = when;
      ++executed_;
      // The closure is invoked in place — never copied or moved per firing.
      // It lives in the arena, whose chunks never move, so the reference
      // survives any scheduling the closure performs; the `executing_` guard
      // keeps self-cancellation from destroying it mid-invoke.
      executing_ = LadderQueue::token_from(meta, slot);
      // Reap on all exits: a throwing action must still clear `executing_`
      // and (for one-shots) release the slot — the old heap destroyed its
      // copied-out Event during unwind, so leaking here would be new.
      struct Reaper {
        Simulation& sim;
        std::uint32_t slot;
        bool periodic;
        ~Reaper() {
          sim.executing_ = kInvalidTask;
          if (periodic) {
            // Self-cancel: reap the closure now that the invoke returned.
            if (sim.queue_.meta(slot) & LadderQueue::kCancelledBit)
              sim.queue_.action(slot) = nullptr;
          } else {
            sim.queue_.release(slot);
          }
        }
      };
      if (meta & LadderQueue::kPeriodicBit) {
        // Requeue BEFORE invoking, so events the action schedules land
        // behind the next firing at equal times — same order as the heap.
        queue_.requeue(slot, now_ + queue_.interval(slot));
        Reaper reaper{*this, slot, /*periodic=*/true};
        queue_.action(slot)();
      } else {
        Reaper reaper{*this, slot, /*periodic=*/false};
        queue_.action(slot)();
      }
      return true;
    }
  }

  /// Run events until the queue is empty or `limit` is reached; the clock is
  /// left at `limit` (or the last event time when the queue drains first).
  void run_until(SimTime limit) {
    // min_when() includes cancelled-but-unreaped records, exactly as the old
    // heap consulted its (lazily deleted) top() — observable semantics match.
    while (!queue_.empty() && queue_.min_when() <= limit) {
      step();
    }
    now_ = std::max(now_, limit);
  }

  /// Run until the queue drains completely.
  void run() {
    while (step()) {
    }
  }

  [[nodiscard]] std::size_t executed_events() const noexcept { return executed_; }
  /// Queued events, including cancelled ones not yet reaped.
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

  /// The underlying queue (arena statistics for soak/leak tests).
  [[nodiscard]] const LadderQueue& queue() const noexcept { return queue_; }

 private:
  SimTime now_ = 0;
  std::size_t executed_ = 0;
  TaskId executing_ = kInvalidTask;  ///< guards cancel-during-own-execution
  LadderQueue queue_;
};

}  // namespace ipfs::sim
