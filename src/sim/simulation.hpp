// Discrete-event simulation engine.
//
// A `Simulation` owns a virtual clock and an event queue.  Events at equal
// timestamps execute in scheduling order (FIFO), which together with the
// seeded RNG tree makes every run bit-reproducible (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"

namespace ipfs::sim {

using common::SimDuration;
using common::SimTime;

/// Identifies a scheduled event or periodic task for cancellation.
using TaskId = std::uint64_t;
inline constexpr TaskId kInvalidTask = 0;

/// Single-threaded discrete-event simulator.
///
/// Thread confinement is the concurrency contract (DESIGN.md §7): a
/// Simulation has no internal synchronisation and must only ever be
/// touched from one thread, but *distinct* Simulations share nothing, so
/// independent runs may execute on as many threads as there are cores
/// (see `runtime::ParallelTrialRunner`).
class Simulation {
 public:
  using Action = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `when` (clamped to now()).
  TaskId schedule_at(SimTime when, Action action);

  /// Schedule `action` after `delay` (clamped to >= 0).
  TaskId schedule_after(SimDuration delay, Action action);

  /// Schedule `action` every `interval`, first firing after `initial_delay`
  /// (defaults to one full interval when not given).  Runs until cancelled.
  TaskId schedule_every(SimDuration interval, Action action,
                        std::optional<SimDuration> initial_delay = std::nullopt);

  /// Cancel a pending one-shot event or periodic task.  Cancelling an
  /// already-executed or unknown id is a no-op.
  void cancel(TaskId id);

  /// Execute the next event, if any.  Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` is reached; the clock is
  /// left at `limit` (or the last event time when the queue drains first).
  void run_until(SimTime limit);

  /// Run until the queue drains completely.
  void run();

  [[nodiscard]] std::size_t executed_events() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending_events() const noexcept;

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t sequence = 0;  ///< FIFO tie-break at equal times
    TaskId id = kInvalidTask;
    SimDuration repeat_every = 0;  ///< 0 for one-shot events
    Action action;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  void push_event(SimTime when, Action action, TaskId id, SimDuration repeat_every);

  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 1;
  TaskId next_task_id_ = 1;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<TaskId> cancelled_;
};

}  // namespace ipfs::sim
