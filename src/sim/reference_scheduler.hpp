// Reference scheduler: the original binary-heap implementation of
// sim::Simulation, retained verbatim as the behavioural oracle for the
// ladder-queue engine (tests/sim/scheduler_oracle_test.cpp runs both
// side-by-side on randomized workloads and asserts identical pop order).
//
// Not used by production code — sim::Simulation is the engine.  Keep this
// class's semantics frozen; it defines the determinism contract
// (DESIGN.md §12) the ladder queue must reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/simulation.hpp"  // TaskId / kInvalidTask

namespace ipfs::sim {

/// Binary-heap discrete-event simulator with lazy cancellation markers —
/// the pre-ladder-queue `Simulation`, preserved as an oracle.
class ReferenceHeapSimulation {
 public:
  using Action = std::function<void()>;

  ReferenceHeapSimulation() = default;
  ReferenceHeapSimulation(const ReferenceHeapSimulation&) = delete;
  ReferenceHeapSimulation& operator=(const ReferenceHeapSimulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  TaskId schedule_at(SimTime when, Action action);
  TaskId schedule_after(SimDuration delay, Action action);
  TaskId schedule_every(SimDuration interval, Action action,
                        std::optional<SimDuration> initial_delay = std::nullopt);
  void cancel(TaskId id);

  bool step();
  void run_until(SimTime limit);
  void run();

  [[nodiscard]] std::size_t executed_events() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t sequence = 0;  ///< FIFO tie-break at equal times
    TaskId id = kInvalidTask;
    SimDuration repeat_every = 0;  ///< 0 for one-shot events
    Action action;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  void push_event(SimTime when, Action action, TaskId id, SimDuration repeat_every);

  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 1;
  TaskId next_task_id_ = 1;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<TaskId> cancelled_;
};

}  // namespace ipfs::sim
