#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>

namespace ipfs::sim {

LadderQueue::~LadderQueue() {
  // Destroy every closure still linked in a bucket (queued records are the
  // exact set of live Action objects; released slots were destroyed on
  // release, and popped records never outlive the dispatch call).
  for (std::uint32_t b = 0; b < kL0Buckets; ++b)
    for (std::size_t i = l0_head_[b]; i < l0_items_[b].size(); ++i)
      action(l0_items_[b][i]).~Action();
  for (int lvl = 0; lvl < kLoLevels; ++lvl)
    for (int b = 0; b < 64; ++b)
      for (const LoEntry& entry : lo_items_[lvl][b]) action(entry.slot).~Action();
  for (int lvl = 0; lvl < kLevels - kLoLevels; ++lvl)
    for (int b = 0; b < 64; ++b)
      for (const HiEntry& entry : hi_items_[lvl][b]) action(entry.slot).~Action();
}

void LadderQueue::grow_arena() {
  // for_overwrite: closures are placement-constructed on acquire, so the
  // chunk must not be value-initialized (zeroing 128 KiB per chunk costs
  // more than the arena bookkeeping itself on bandwidth-limited hosts).
  chunks_.push_back(std::make_unique_for_overwrite<std::byte[]>(
      sizeof(Action) * (std::size_t{1} << kChunkShift)));
}

void LadderQueue::cascade_lowest() {
  for (int lvl = 0; lvl < kLevels; ++lvl) {
    if (up_bits_[lvl] == 0) continue;
    const int b = std::countr_zero(up_bits_[lvl]);
    const int shift = kL0Bits + kDigitBits * lvl;
    // Re-anchor the wheel at the bucket's base time: keep the digits above
    // this level, set this level's digit to `b`, zero everything below.
    const std::uint64_t anchor = static_cast<std::uint64_t>(wheel_now_);
    const std::uint64_t above =
        (shift + kDigitBits >= 64)
            ? 0
            : anchor & ~((std::uint64_t{1} << (shift + kDigitBits)) - 1);
    const std::uint64_t base =
        above | (static_cast<std::uint64_t>(b) << shift);
    wheel_now_ = static_cast<SimTime>(base);
    up_bits_[lvl] &= ~(std::uint64_t{1} << b);
    // Redistribute the whole bucket in append order, which preserves
    // schedule order within every destination bucket (FIFO contract).
    // Destinations are strictly lower levels, so iterating in place is safe.
    if (lvl < kLoLevels) {
      std::vector<LoEntry>& items = lo_items_[lvl][b];
      if (lvl == 0) {
        // These records execute within the next 4096 ms: warm their closure
        // lines so the pops that follow hit cache.  Cap the sweep — beyond
        // a couple of MB the lines would be evicted before use anyway.
        const std::size_t cap = std::min(items.size(), std::size_t{32768});
        for (std::size_t i = 0; i < cap; ++i)
          __builtin_prefetch(slot_raw(items[i].slot), 0, 2);
      }
      for (const LoEntry& entry : items)
        link(entry.slot, static_cast<SimTime>(base + entry.delta));
      items.clear();
    } else {
      std::vector<HiEntry>& items = hi_items_[lvl - kLoLevels][b];
      for (const HiEntry& entry : items) link(entry.slot, entry.when);
      items.clear();
    }
    return;
  }
  assert(false && "cascade_lowest called with all levels empty");
}

SimTime LadderQueue::min_when() const noexcept {
  assert(size_ > 0);
  if (l0_summary_ != 0) {
    const int word = std::countr_zero(l0_summary_);
    const int bit = std::countr_zero(l0_bits_[word]);
    const std::uint64_t base =
        static_cast<std::uint64_t>(wheel_now_) & ~std::uint64_t{kL0Buckets - 1};
    return static_cast<SimTime>(base) + word * 64 + bit;
  }
  for (int lvl = 0; lvl < kLevels; ++lvl) {
    if (up_bits_[lvl] == 0) continue;
    const int b = std::countr_zero(up_bits_[lvl]);
    const int shift = kL0Bits + kDigitBits * lvl;
    // The bucket spans more than one L0 window: scan its (flat) entries.
    if (lvl < kLoLevels) {
      std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
      for (const LoEntry& entry : lo_items_[lvl][b])
        best = std::min(best, entry.delta);
      const std::uint64_t anchor = static_cast<std::uint64_t>(wheel_now_);
      const std::uint64_t above =
          (shift + kDigitBits >= 64)
              ? 0
              : anchor & ~((std::uint64_t{1} << (shift + kDigitBits)) - 1);
      return static_cast<SimTime>(
          (above | (static_cast<std::uint64_t>(b) << shift)) + best);
    }
    SimTime best = std::numeric_limits<SimTime>::max();
    for (const HiEntry& entry : hi_items_[lvl - kLoLevels][b])
      best = std::min(best, entry.when);
    return best;
  }
  return std::numeric_limits<SimTime>::max();  // unreachable: size_ > 0
}

std::size_t LadderQueue::bucket_capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const std::vector<std::uint32_t>& items : l0_items_)
    total += items.capacity() * sizeof(std::uint32_t);
  for (int lvl = 0; lvl < kLoLevels; ++lvl)
    for (int b = 0; b < 64; ++b)
      total += lo_items_[lvl][b].capacity() * sizeof(LoEntry);
  for (int lvl = 0; lvl < kLevels - kLoLevels; ++lvl)
    for (int b = 0; b < 64; ++b)
      total += hi_items_[lvl][b].capacity() * sizeof(HiEntry);
  return total;
}

}  // namespace ipfs::sim
