#include "sim/reference_scheduler.hpp"

#include <algorithm>
#include <utility>

namespace ipfs::sim {

void ReferenceHeapSimulation::push_event(SimTime when, Action action, TaskId id,
                                         SimDuration repeat_every) {
  Event event;
  event.when = std::max(when, now_);
  event.sequence = next_sequence_++;
  event.id = id;
  event.repeat_every = repeat_every;
  event.action = std::move(action);
  queue_.push(std::move(event));
}

TaskId ReferenceHeapSimulation::schedule_at(SimTime when, Action action) {
  const TaskId id = next_task_id_++;
  push_event(when, std::move(action), id, 0);
  return id;
}

TaskId ReferenceHeapSimulation::schedule_after(SimDuration delay, Action action) {
  return schedule_at(now_ + std::max<SimDuration>(delay, 0), std::move(action));
}

TaskId ReferenceHeapSimulation::schedule_every(
    SimDuration interval, Action action,
    std::optional<SimDuration> initial_delay) {
  const TaskId id = next_task_id_++;
  interval = std::max<SimDuration>(interval, 1);
  const SimDuration first =
      std::max<SimDuration>(initial_delay.value_or(interval), 0);
  push_event(now_ + first, std::move(action), id, interval);
  return id;
}

void ReferenceHeapSimulation::cancel(TaskId id) {
  if (id != kInvalidTask) cancelled_.insert(id);
}

bool ReferenceHeapSimulation::step() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the event is copied out so the
    // queue can be popped before the action runs (the action may schedule).
    Event event = queue_.top();
    queue_.pop();
    if (cancelled_.contains(event.id)) {
      // Lazy deletion: one-shot cancelled events are dropped here; the
      // cancellation marker persists only while an instance is in flight.
      if (event.repeat_every == 0) cancelled_.erase(event.id);
      continue;
    }
    now_ = event.when;
    ++executed_;
    if (event.repeat_every > 0) {
      push_event(now_ + event.repeat_every, event.action, event.id, event.repeat_every);
    }
    event.action();
    return true;
  }
  return false;
}

void ReferenceHeapSimulation::run_until(SimTime limit) {
  while (!queue_.empty() && queue_.top().when <= limit) {
    step();
  }
  now_ = std::max(now_, limit);
}

void ReferenceHeapSimulation::run() {
  while (step()) {
  }
}

}  // namespace ipfs::sim
