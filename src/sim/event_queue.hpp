// Hierarchical timing-wheel ("ladder") event queue backing sim::Simulation.
//
// The queue stores arena-allocated event closures and pops them in exactly
// the order the original binary-heap scheduler did: ascending `when`, FIFO
// among equal timestamps.  See DESIGN.md §12 for the structure, the
// determinism contract, and the arena lifetime rules.
//
// Shape
//   - Level 0 is a 4096-bucket wheel of 1 ms buckets anchored at `wheel_now_`
//     (the timestamp of the last popped record).  Within the current 4096 ms
//     window the bucket index `when & 4095` is injective, so every record in
//     an L0 bucket shares the same `when`: buckets store bare 4-byte slot
//     indices (the timestamp is implied by the bucket) and append order is
//     exactly schedule order — FIFO needs no sequence numbers, it is
//     structural.
//   - Levels 1..9 are 64-bucket wheels over successive 6-bit digits of the
//     absolute timestamp (level k spans bits [12+6(k-1), 12+6k); level 9
//     covers the top bits, so any non-negative SimTime fits — there is no
//     overflow list).  A record lands on the level of the most significant
//     bit of `when ^ wheel_now_`; occupied upper buckets always lie strictly
//     in the future, and the lowest occupied bucket of the lowest occupied
//     level contains the global minimum.  Levels 1..4 (spans < 2^32 ms)
//     store 8-byte {delta-from-bucket-base, slot} entries; the rare far
//     levels 5..9 store 16-byte {when, slot} entries.
//   - When L0 drains, the lowest occupied upper bucket is re-anchored
//     (`wheel_now_` jumps to the bucket's base time) and its records cascade
//     down one or more levels.  Each record cascades at most once per level,
//     so enqueue+dequeue stay amortized O(1).  A level-1 → level-0 cascade
//     prefetches the window's closures: every pop that follows finds its
//     record in cache.
//
// FIFO correctness across cascades: bucket vectors are appended in schedule
// order and redistributed in order, and a timestamp enters the L0 window
// only when every record bearing it has already cascaded into L0 — so
// append order within an L0 bucket is always global schedule order.
//
// Closures live in a chunked arena whose chunks never move; they are
// placement-constructed on insert (one move, no copies — and no zeroing of
// cold chunks) and destroyed on release.  Per-slot bookkeeping lives in
// dense side arrays, not next to the closure: `meta_` packs
// (generation << 2 | periodic << 1 | cancelled) so the cancelled/periodic
// checks on the pop path and the liveness check in `cancel` touch 4 bytes,
// and `intervals_` is only ever read for periodic records.  Freed slots go
// on a free stack and their generation is bumped; tokens embed
// (generation, slot), which makes `cancel` on an already-completed or
// never-issued token a true O(1) no-op.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "common/sim_time.hpp"

namespace ipfs::sim {

using common::SimDuration;
using common::SimTime;

class LadderQueue {
 public:
  using Action = std::function<void()>;
  using Token = std::uint64_t;

  static constexpr Token kNullToken = 0;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Result of `pop_min`: the record's timestamp and arena slot
  /// (slot == kNil when the queue is empty).
  struct PopInfo {
    SimTime when;
    std::uint32_t slot;
  };

  // meta_ bit layout.
  static constexpr std::uint32_t kCancelledBit = 1u;
  static constexpr std::uint32_t kPeriodicBit = 2u;
  static constexpr int kGenShift = 2;

  LadderQueue() = default;
  LadderQueue(const LadderQueue&) = delete;
  LadderQueue& operator=(const LadderQueue&) = delete;
  ~LadderQueue();

  /// Insert a record at absolute time `when` (must be >= the last popped
  /// time).  Returns a token that stays valid until the record is released
  /// (one-shot pop) — periodic records keep their token across requeues.
  Token insert(SimTime when, SimDuration repeat_every, Action action) {
    assert(when >= wheel_now_ && "Simulation clamps schedule times to now()");
    const std::uint32_t slot = acquire_slot();
    ::new (slot_raw(slot)) Action(std::move(action));
    if (repeat_every > 0) {
      meta_[slot] |= kPeriodicBit;
      if (intervals_.size() < meta_.size()) intervals_.resize(meta_.size(), 0);
      intervals_[slot] = repeat_every;
    }
    link(slot, when);
    ++size_;
    return token_from(meta_[slot], slot);
  }

  /// Mark the record cancelled.  Destroys the closure target immediately
  /// unless `keep_action` (the caller is mid-invoke of this very closure —
  /// the dispatch loop reaps it on return).  Returns false (no-op) for
  /// stale, never-issued, or null tokens.
  bool cancel(Token token, bool keep_action) {
    const std::uint64_t slot_part = token & 0xFFFFFFFFu;
    if (slot_part == 0) return false;
    const std::uint32_t slot = static_cast<std::uint32_t>(slot_part) - 1;
    if (slot >= next_fresh_) return false;
    const std::uint32_t m = meta_[slot];
    if ((m >> kGenShift) != static_cast<std::uint32_t>(token >> 32)) return false;
    meta_[slot] = m | kCancelledBit;
    if (!keep_action) action(slot) = nullptr;
    return true;
  }

  /// Unlink and return the minimum (when, FIFO) record.  The record is NOT
  /// released: the caller inspects `meta`/`action`, then either `requeue`s
  /// (periodic) or `release`s it.  Advances the wheel anchor.
  PopInfo pop_min() {
    if (size_ == 0) return {0, kNil};
    while (l0_summary_ == 0) cascade_lowest();
    const int word = std::countr_zero(l0_summary_);
    const int bit = std::countr_zero(l0_bits_[word]);
    const std::uint32_t b = static_cast<std::uint32_t>(word * 64 + bit);
    std::vector<std::uint32_t>& items = l0_items_[b];
    const std::uint32_t slot = items[l0_head_[b]++];
    if (l0_head_[b] == items.size()) {
      items.clear();
      l0_head_[b] = 0;
      l0_bits_[word] &= ~(std::uint64_t{1} << bit);
      if (l0_bits_[word] == 0) l0_summary_ &= ~(std::uint64_t{1} << word);
    }
    const SimTime when =
        (wheel_now_ & ~static_cast<SimTime>(kL0Buckets - 1)) | b;
    wheel_now_ = when;
    --size_;
    // Warm the next pop's closure while the caller dispatches this one.
    if (l0_head_[b] < l0_items_[b].size()) {
      __builtin_prefetch(slot_raw(l0_items_[b][l0_head_[b]]), 0, 3);
    } else if (l0_summary_ != 0) {
      const int w2 = std::countr_zero(l0_summary_);
      const int b2 = w2 * 64 + std::countr_zero(l0_bits_[w2]);
      __builtin_prefetch(slot_raw(l0_items_[b2][l0_head_[b2]]), 0, 3);
    }
    return {when, slot};
  }

  /// Re-insert a popped record at `when`.  The token issued at `insert`
  /// time remains valid.
  void requeue(std::uint32_t slot, SimTime when) {
    link(slot, when);
    ++size_;
  }

  /// Re-anchor the wheel at `t`.  Only legal on an empty queue, where the
  /// anchor carries no ordering state.  `pop_min` advances the anchor for
  /// cancelled records too (the clock does not), so after a drain the anchor
  /// can sit past the time future inserts are clamped to; the dispatch loop
  /// resets it to the clock before reporting the queue empty.
  void reset_anchor(SimTime t) noexcept {
    assert(size_ == 0 && "anchor reset requires a drained queue");
    wheel_now_ = t;
  }

  /// Destroy the record's closure, bump its generation (invalidating the
  /// token, clearing flags) and push the slot on the free stack.
  void release(std::uint32_t slot) {
    action(slot).~Action();
    meta_[slot] = ((meta_[slot] >> kGenShift) + 1) << kGenShift;
    free_list_.push_back(slot);
  }

  [[nodiscard]] std::uint32_t meta(std::uint32_t slot) const noexcept {
    return meta_[slot];
  }
  [[nodiscard]] SimDuration interval(std::uint32_t slot) const noexcept {
    return intervals_[slot];
  }
  [[nodiscard]] Action& action(std::uint32_t slot) noexcept {
    return *std::launder(reinterpret_cast<Action*>(slot_raw(slot)));
  }

  [[nodiscard]] static Token token_from(std::uint32_t meta,
                                        std::uint32_t slot) noexcept {
    return (static_cast<Token>(meta >> kGenShift) << 32) | (slot + 1);
  }

  /// Earliest queued timestamp, including cancelled-but-unreaped records
  /// (they still gate `run_until`, exactly as the heap's lazy deletion did).
  /// Non-mutating — never advances the wheel.  Requires !empty().
  [[nodiscard]] SimTime min_when() const noexcept;

  /// Queued records, including cancelled ones awaiting reap (matches the old
  /// `priority_queue::size()` observable).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // ---- Arena introspection (soak/leak tests) -------------------------------
  /// Slots ever handed out by the arena (high-water mark).
  [[nodiscard]] std::size_t arena_slots() const noexcept { return next_fresh_; }
  /// Slots currently on the free stack.
  [[nodiscard]] std::size_t free_slots() const noexcept { return free_list_.size(); }
  /// Allocated arena chunks (bounded-memory assertion hook).
  [[nodiscard]] std::size_t arena_chunks() const noexcept { return chunks_.size(); }
  /// Bytes of bucket-entry capacity currently retained across all wheels
  /// (steady-state memory assertion hook).
  [[nodiscard]] std::size_t bucket_capacity_bytes() const noexcept;

 private:
  static constexpr int kChunkShift = 12;  // 4096 records per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;
  static constexpr int kL0Bits = 12;  // log2(kL0Buckets)
  static constexpr std::uint32_t kL0Buckets = 1u << kL0Bits;  // 1 ms each
  static constexpr std::uint64_t kL0Span = kL0Buckets;
  static constexpr int kDigitBits = 6;
  static constexpr int kLevels = 9;    // 6-bit digits over bits 12..65
  static constexpr int kLoLevels = 4;  // spans < 2^32 ms: compact entries

  /// Levels 1..4: bucket span fits 32 bits, store the offset from the
  /// bucket's base time (recovered at cascade from the new wheel anchor).
  struct LoEntry {
    std::uint32_t delta;
    std::uint32_t slot;
  };
  /// Levels 5..9 (more than ~2 simulated years ahead): absolute time.
  struct HiEntry {
    SimTime when;
    std::uint32_t slot;
  };

  [[nodiscard]] std::byte* slot_raw(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift].get() +
           sizeof(Action) * (slot & kChunkMask);
  }

  std::uint32_t acquire_slot() {
    if (!free_list_.empty()) {
      const std::uint32_t slot = free_list_.back();
      free_list_.pop_back();
      return slot;
    }
    const std::uint32_t slot = next_fresh_++;
    if ((slot >> kChunkShift) == chunks_.size()) grow_arena();
    meta_.push_back(0);
    return slot;
  }

  void link(std::uint32_t slot, SimTime when) {
    const std::uint64_t t = static_cast<std::uint64_t>(when);
    const std::uint64_t x = t ^ static_cast<std::uint64_t>(wheel_now_);
    if (x < kL0Span) {
      const std::uint32_t b = static_cast<std::uint32_t>(t & (kL0Buckets - 1));
      l0_items_[b].push_back(slot);
      l0_bits_[b >> 6] |= std::uint64_t{1} << (b & 63);
      l0_summary_ |= std::uint64_t{1} << (b >> 6);
    } else {
      const int msb = 63 - std::countl_zero(x);
      const int lvl = (msb - kL0Bits) / kDigitBits;
      const int shift = kL0Bits + kDigitBits * lvl;
      const std::uint32_t b = static_cast<std::uint32_t>((t >> shift) & 63);
      if (lvl < kLoLevels) {
        lo_items_[lvl][b].push_back(
            {static_cast<std::uint32_t>(t & ((std::uint64_t{1} << shift) - 1)),
             slot});
      } else {
        hi_items_[lvl - kLoLevels][b].push_back({when, slot});
      }
      up_bits_[lvl] |= std::uint64_t{1} << b;
    }
  }

  void grow_arena();
  void cascade_lowest();

  SimTime wheel_now_ = 0;  ///< `when` of the last popped record
  std::size_t size_ = 0;

  // Level 0: hierarchical occupancy bitmap (summary word over 64 words of 64
  // buckets).  Each bucket is consumed front-to-back via `l0_head_`.
  std::uint64_t l0_summary_ = 0;
  std::uint64_t l0_bits_[kL0Buckets / 64] = {};
  std::vector<std::uint32_t> l0_items_[kL0Buckets];
  std::uint32_t l0_head_[kL0Buckets] = {};

  // Upper levels: one 64-bit occupancy word each (index 0 is level 1).
  std::uint64_t up_bits_[kLevels] = {};
  std::vector<LoEntry> lo_items_[kLoLevels][64];
  std::vector<HiEntry> hi_items_[kLevels - kLoLevels][64];

  // Arena: raw chunks of closure storage + dense per-slot bookkeeping.
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::uint32_t> meta_;        ///< gen<<2 | periodic<<1 | cancelled
  std::vector<SimDuration> intervals_;     ///< valid where periodic bit set
  std::uint32_t next_fresh_ = 0;           ///< first never-used slot
  std::vector<std::uint32_t> free_list_;
};

}  // namespace ipfs::sim
