// How observations leave the system.
//
// Every producer of measurement data — the passive `Recorder`, the active
// crawler's periodic snapshots and the campaign engine's per-vantage
// datasets — publishes through the `MeasurementSink` interface instead of
// returning one monolithic struct (DESIGN.md §4).  Crawl observations
// stream as they happen; datasets are published once finalised.  Consumers
// that want the old all-in-memory shape use a collecting sink (or
// `scenario::CampaignResultSink` for campaigns).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/sim_time.hpp"
#include "measure/dataset.hpp"

namespace ipfs::measure {

/// What a published dataset represents within a run.
enum class DatasetRole : std::uint8_t {
  kVantage,     ///< the primary vantage (the paper's instrumented go-ipfs)
  kHydraHead,   ///< one hydra head
  kHydraUnion,  ///< union of all hydra heads (§III-C)
  kOther,       ///< ad-hoc recorders (testbed experiments)
};

[[nodiscard]] std::string_view to_string(DatasetRole role) noexcept;
/// Inverse of `to_string`; nullopt for unknown names.  Scenario files use
/// these names to pick an export role filter (docs/SCENARIOS.md).
[[nodiscard]] std::optional<DatasetRole> role_from_string(
    std::string_view name) noexcept;

/// One active-crawler snapshot (the Fig. 2 baseline).
struct CrawlObservation {
  SimTime at = 0;
  std::size_t reached_servers = 0;  ///< online, reachable DHT servers
  std::size_t learned_pids = 0;     ///< incl. stale routing-table entries
};

/// One sample of the true population state next to the vantage's view —
/// published by campaign runs with a session-churn model engaged
/// (scenario::ChurnModel, DESIGN.md §10).  This is the ground truth the
/// paper never had: `analysis::observed_vs_true` compares it against the
/// sessions reconstructed from the dataset.
struct PopulationSample {
  SimTime at = 0;
  std::size_t online = 0;     ///< peers truly inside a session right now
  std::size_t total = 0;      ///< full population size
  std::size_t connected = 0;  ///< distinct peers with an open vantage connection
};

/// One provider-record publish landing at the vantages — published by
/// campaign runs with a content workload engaged (scenario::ContentModel,
/// DESIGN.md §11).
struct ProvideSample {
  SimTime at = 0;
  std::uint32_t key = 0;       ///< keyspace index of the provided CID
  std::uint32_t provider = 0;  ///< population index of the providing peer
  bool republish = false;      ///< true for 12 h-cycle refreshes
};

/// One Bitswap fetch attempt: provider lookup at a vantage followed by a
/// want/block exchange when a live provider record was found.
struct FetchSample {
  SimTime at = 0;
  std::uint32_t key = 0;        ///< keyspace index requested
  bool found_provider = false;  ///< a live provider record existed
  bool served = false;          ///< the block actually arrived
  SimDuration latency = 0;      ///< want -> block round trip (0 when unserved)
};

/// One records-at-vantage sample next to the ground truth — what the
/// paper's hydra "belly" sees versus what is truly live.
struct ContentSample {
  SimTime at = 0;
  std::size_t vantage_records = 0;  ///< live provider records across server vantages
  std::size_t vantage_keys = 0;     ///< distinct keys with >= 1 live record
  std::size_t true_records = 0;     ///< provider slots of peers truly online
};

/// Per-phase activity totals of a phased campaign (scenario::PhaseProgram,
/// DESIGN.md §14): what actually happened inside each phase window.
struct PhaseSummary {
  std::string name;  ///< phase label ("" = unnamed)
  std::string mode;  ///< "hold" / "ramp" / "burst" / "flash_crowd"
  SimTime start = 0;
  SimDuration hold = 0;
  std::uint64_t sessions = 0;  ///< sessions started inside the window
  std::uint64_t provides = 0;  ///< provider publishes that landed
  std::uint64_t fetches = 0;   ///< fetch attempts emitted
  std::uint64_t crawls = 0;    ///< crawler snapshots taken
};

/// End-of-run bookkeeping, published after the last dataset.
struct RunSummary {
  std::size_t population_size = 0;
  std::size_t events_executed = 0;
  /// Per-phase totals; empty unless a phase program ran.
  std::vector<PhaseSummary> phases;
};

/// Receives measurement output.  Hooks default to no-ops so sinks override
/// only what they consume.  Within one run the call order is:
/// `on_run_begin`, any number of `on_crawl` / `on_population` /
/// `on_provide` / `on_fetch` / `on_content` (interleaved, each in
/// simulation-time order), then every `on_dataset`, then `on_run_end`.
class MeasurementSink {
 public:
  virtual ~MeasurementSink() = default;

  virtual void on_run_begin(const std::string& description) { (void)description; }
  virtual void on_crawl(const CrawlObservation& crawl) { (void)crawl; }
  virtual void on_population(const PopulationSample& sample) { (void)sample; }
  virtual void on_provide(const ProvideSample& sample) { (void)sample; }
  virtual void on_fetch(const FetchSample& sample) { (void)sample; }
  virtual void on_content(const ContentSample& sample) { (void)sample; }
  virtual void on_dataset(DatasetRole role, Dataset dataset) {
    (void)role;
    (void)dataset;
  }
  virtual void on_run_end(const RunSummary& summary) { (void)summary; }
};

/// Buffers everything published (testbed experiments, tests).
class CollectingSink final : public MeasurementSink {
 public:
  struct Entry {
    DatasetRole role = DatasetRole::kOther;
    Dataset dataset;
  };

  void on_run_begin(const std::string& description) override {
    description_ = description;
  }
  void on_crawl(const CrawlObservation& crawl) override { crawls_.push_back(crawl); }
  void on_population(const PopulationSample& sample) override {
    population_.push_back(sample);
  }
  void on_provide(const ProvideSample& sample) override {
    provides_.push_back(sample);
  }
  void on_fetch(const FetchSample& sample) override { fetches_.push_back(sample); }
  void on_content(const ContentSample& sample) override {
    content_.push_back(sample);
  }
  void on_dataset(DatasetRole role, Dataset dataset) override {
    datasets_.push_back({role, std::move(dataset)});
  }
  void on_run_end(const RunSummary& summary) override { summary_ = summary; }

  [[nodiscard]] const std::string& description() const noexcept { return description_; }
  [[nodiscard]] const std::vector<CrawlObservation>& crawls() const noexcept {
    return crawls_;
  }
  [[nodiscard]] const std::vector<PopulationSample>& population() const noexcept {
    return population_;
  }
  [[nodiscard]] const std::vector<ProvideSample>& provides() const noexcept {
    return provides_;
  }
  [[nodiscard]] const std::vector<FetchSample>& fetches() const noexcept {
    return fetches_;
  }
  [[nodiscard]] const std::vector<ContentSample>& content() const noexcept {
    return content_;
  }
  [[nodiscard]] const std::vector<Entry>& datasets() const noexcept {
    return datasets_;
  }
  [[nodiscard]] const RunSummary& summary() const noexcept { return summary_; }

  /// First dataset published with `role`, nullptr when absent.
  [[nodiscard]] const Dataset* find(DatasetRole role) const noexcept;

 private:
  std::string description_;
  std::vector<CrawlObservation> crawls_;
  std::vector<PopulationSample> population_;
  std::vector<ProvideSample> provides_;
  std::vector<FetchSample> fetches_;
  std::vector<ContentSample> content_;
  std::vector<Entry> datasets_;
  RunSummary summary_;
};

/// Records the complete event stream — begin, crawls, datasets, end — in
/// publication order and replays it into another sink later, byte-for-byte
/// equivalent to having published there directly.  This is how
/// `runtime::ParallelTrialRunner` buffers each concurrent trial's output so
/// the merged stream can be emitted in deterministic trial order
/// (DESIGN.md §7).
class ReplaySink final : public MeasurementSink {
 public:
  void on_run_begin(const std::string& description) override;
  void on_crawl(const CrawlObservation& crawl) override;
  void on_population(const PopulationSample& sample) override;
  void on_provide(const ProvideSample& sample) override;
  void on_fetch(const FetchSample& sample) override;
  void on_content(const ContentSample& sample) override;
  void on_dataset(DatasetRole role, Dataset dataset) override;
  void on_run_end(const RunSummary& summary) override;

  /// Replay the recorded stream into `sink` in original order.  Datasets
  /// are moved out; a ReplaySink replays once.
  void replay(MeasurementSink& sink);

  [[nodiscard]] std::size_t event_count() const noexcept { return events_.size(); }

 private:
  struct BeginEvent {
    std::string description;
  };
  struct DatasetEvent {
    DatasetRole role = DatasetRole::kOther;
    Dataset dataset;
  };
  using Event = std::variant<BeginEvent, CrawlObservation, PopulationSample,
                             ProvideSample, FetchSample, ContentSample,
                             DatasetEvent, RunSummary>;

  std::vector<Event> events_;
};

/// Broadcasts every event to several sinks (e.g. keep results in memory
/// while also streaming a JSON export).  Datasets are copied for all but
/// the last registered sink.
class FanOutSink final : public MeasurementSink {
 public:
  FanOutSink() = default;
  FanOutSink(std::initializer_list<MeasurementSink*> sinks) : sinks_(sinks) {}

  void add(MeasurementSink& sink) { sinks_.push_back(&sink); }

  void on_run_begin(const std::string& description) override;
  void on_crawl(const CrawlObservation& crawl) override;
  void on_population(const PopulationSample& sample) override;
  void on_provide(const ProvideSample& sample) override;
  void on_fetch(const FetchSample& sample) override;
  void on_content(const ContentSample& sample) override;
  void on_dataset(DatasetRole role, Dataset dataset) override;
  void on_run_end(const RunSummary& summary) override;

 private:
  std::vector<MeasurementSink*> sinks_;
};

/// Streams datasets as JSON to an ostream the moment they are published —
/// the sink equivalent of the paper's periodic JSON dumps (§III-A).
/// Churned runs additionally publish ground-truth `PopulationSample`s,
/// exported as one `population_samples` document per run after the
/// datasets (runs without churn emit nothing extra — legacy exports stay
/// byte-identical).  Content-enabled runs likewise get one
/// `provide_samples` / `fetch_samples` / `content_samples` document per
/// non-empty stream, in that order after the population one.
///
/// Samples are *streamed*, not buffered: each one is rendered to its
/// document's spool (an unnamed temporary file) the moment it arrives and
/// the finished documents are spliced into the output at run end.  Memory
/// stays O(1) in the sample count, which is what lets million-peer
/// campaigns export their ground-truth streams; the spliced bytes are
/// identical to the former buffer-everything implementation.
class JsonExportSink final : public MeasurementSink {
 public:
  struct Options {
    bool include_connections = false;
    /// Pretty-print the exported documents (scenario specs can opt for
    /// compact single-line output instead).
    bool pretty = true;
    /// When set, only datasets with this role are exported (population
    /// samples are not datasets and are unaffected).
    std::optional<DatasetRole> role_filter;
  };

  explicit JsonExportSink(std::ostream& out);
  JsonExportSink(std::ostream& out, Options options);
  ~JsonExportSink() override;

  void on_population(const PopulationSample& sample) override;
  void on_provide(const ProvideSample& sample) override;
  void on_fetch(const FetchSample& sample) override;
  void on_content(const ContentSample& sample) override;
  void on_dataset(DatasetRole role, Dataset dataset) override;
  void on_run_end(const RunSummary& summary) override;

  [[nodiscard]] std::size_t exported_count() const noexcept { return exported_; }

 private:
  struct Spool;  // one per in-flight sample document; see sink.cpp

  /// The spool for `slot`, opened (and its document header written) on
  /// first use.
  Spool& spool(std::unique_ptr<Spool>& slot, std::string_view document_key);
  /// Close `slot`'s document and copy its bytes to the output.
  void splice(std::unique_ptr<Spool>& slot);

  std::ostream& out_;
  Options options_;
  std::size_t exported_ = 0;
  std::unique_ptr<Spool> population_;
  std::unique_ptr<Spool> provides_;
  std::unique_ptr<Spool> fetches_;
  std::unique_ptr<Spool> content_;
};

}  // namespace ipfs::measure
