#include "measure/shard_tally.hpp"

namespace ipfs::measure {

PopulationTally fold(std::span<const PopulationTally> partials) noexcept {
  return fold_shards(partials);
}

ContentTally fold(std::span<const ContentTally> partials) noexcept {
  return fold_shards(partials);
}

}  // namespace ipfs::measure
