#include "measure/sink.hpp"

#include <ostream>
#include <type_traits>
#include <utility>

#include "common/json.hpp"

namespace ipfs::measure {

std::string_view to_string(DatasetRole role) noexcept {
  switch (role) {
    case DatasetRole::kVantage: return "vantage";
    case DatasetRole::kHydraHead: return "hydra-head";
    case DatasetRole::kHydraUnion: return "hydra-union";
    case DatasetRole::kOther: break;
  }
  return "other";
}

std::optional<DatasetRole> role_from_string(std::string_view name) noexcept {
  for (const DatasetRole role : {DatasetRole::kVantage, DatasetRole::kHydraHead,
                                 DatasetRole::kHydraUnion, DatasetRole::kOther}) {
    if (to_string(role) == name) return role;
  }
  return std::nullopt;
}

const Dataset* CollectingSink::find(DatasetRole role) const noexcept {
  for (const Entry& entry : datasets_) {
    if (entry.role == role) return &entry.dataset;
  }
  return nullptr;
}

void ReplaySink::on_run_begin(const std::string& description) {
  events_.push_back(BeginEvent{description});
}

void ReplaySink::on_crawl(const CrawlObservation& crawl) { events_.push_back(crawl); }

void ReplaySink::on_population(const PopulationSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_provide(const ProvideSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_fetch(const FetchSample& sample) { events_.push_back(sample); }

void ReplaySink::on_content(const ContentSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_dataset(DatasetRole role, Dataset dataset) {
  events_.push_back(DatasetEvent{role, std::move(dataset)});
}

void ReplaySink::on_run_end(const RunSummary& summary) { events_.push_back(summary); }

void ReplaySink::replay(MeasurementSink& sink) {
  for (Event& event : events_) {
    std::visit(
        [&sink](auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, BeginEvent>) {
            sink.on_run_begin(e.description);
          } else if constexpr (std::is_same_v<T, CrawlObservation>) {
            sink.on_crawl(e);
          } else if constexpr (std::is_same_v<T, PopulationSample>) {
            sink.on_population(e);
          } else if constexpr (std::is_same_v<T, ProvideSample>) {
            sink.on_provide(e);
          } else if constexpr (std::is_same_v<T, FetchSample>) {
            sink.on_fetch(e);
          } else if constexpr (std::is_same_v<T, ContentSample>) {
            sink.on_content(e);
          } else if constexpr (std::is_same_v<T, DatasetEvent>) {
            sink.on_dataset(e.role, std::move(e.dataset));
          } else {
            sink.on_run_end(e);
          }
        },
        event);
  }
  events_.clear();
}

void FanOutSink::on_run_begin(const std::string& description) {
  for (MeasurementSink* sink : sinks_) sink->on_run_begin(description);
}

void FanOutSink::on_crawl(const CrawlObservation& crawl) {
  for (MeasurementSink* sink : sinks_) sink->on_crawl(crawl);
}

void FanOutSink::on_population(const PopulationSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_population(sample);
}

void FanOutSink::on_provide(const ProvideSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_provide(sample);
}

void FanOutSink::on_fetch(const FetchSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_fetch(sample);
}

void FanOutSink::on_content(const ContentSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_content(sample);
}

void FanOutSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (sinks_.empty()) return;
  for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) {
    sinks_[i]->on_dataset(role, dataset);  // copy for all but the last
  }
  sinks_.back()->on_dataset(role, std::move(dataset));
}

void FanOutSink::on_run_end(const RunSummary& summary) {
  for (MeasurementSink* sink : sinks_) sink->on_run_end(summary);
}

void JsonExportSink::on_population(const PopulationSample& sample) {
  population_.push_back(sample);
}

void JsonExportSink::on_provide(const ProvideSample& sample) {
  provides_.push_back(sample);
}

void JsonExportSink::on_fetch(const FetchSample& sample) {
  fetches_.push_back(sample);
}

void JsonExportSink::on_content(const ContentSample& sample) {
  content_.push_back(sample);
}

void JsonExportSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (options_.role_filter && *options_.role_filter != role) return;
  dataset.export_json(out_, options_.include_connections, options_.pretty);
  out_ << "\n";
  ++exported_;
}

void JsonExportSink::on_run_end(const RunSummary& summary) {
  (void)summary;
  // Non-churned, non-content runs export nothing extra here, so legacy
  // exports stay byte-identical.
  if (!population_.empty()) {
    common::JsonWriter writer(out_, options_.pretty);
    writer.begin_object();
    writer.key("population_samples");
    writer.begin_array();
    for (const PopulationSample& sample : population_) {
      writer.begin_object();
      writer.field("at_ms", static_cast<std::int64_t>(sample.at));
      writer.field("online", static_cast<std::uint64_t>(sample.online));
      writer.field("total", static_cast<std::uint64_t>(sample.total));
      writer.field("connected", static_cast<std::uint64_t>(sample.connected));
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
    out_ << "\n";
    population_.clear();
  }
  if (!provides_.empty()) {
    common::JsonWriter writer(out_, options_.pretty);
    writer.begin_object();
    writer.key("provide_samples");
    writer.begin_array();
    for (const ProvideSample& sample : provides_) {
      writer.begin_object();
      writer.field("at_ms", static_cast<std::int64_t>(sample.at));
      writer.field("key", static_cast<std::uint64_t>(sample.key));
      writer.field("provider", static_cast<std::uint64_t>(sample.provider));
      writer.field("republish", sample.republish);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
    out_ << "\n";
    provides_.clear();
  }
  if (!fetches_.empty()) {
    common::JsonWriter writer(out_, options_.pretty);
    writer.begin_object();
    writer.key("fetch_samples");
    writer.begin_array();
    for (const FetchSample& sample : fetches_) {
      writer.begin_object();
      writer.field("at_ms", static_cast<std::int64_t>(sample.at));
      writer.field("key", static_cast<std::uint64_t>(sample.key));
      writer.field("found_provider", sample.found_provider);
      writer.field("served", sample.served);
      writer.field("latency_ms", static_cast<std::int64_t>(sample.latency));
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
    out_ << "\n";
    fetches_.clear();
  }
  if (!content_.empty()) {
    common::JsonWriter writer(out_, options_.pretty);
    writer.begin_object();
    writer.key("content_samples");
    writer.begin_array();
    for (const ContentSample& sample : content_) {
      writer.begin_object();
      writer.field("at_ms", static_cast<std::int64_t>(sample.at));
      writer.field("vantage_records",
                   static_cast<std::uint64_t>(sample.vantage_records));
      writer.field("vantage_keys", static_cast<std::uint64_t>(sample.vantage_keys));
      writer.field("true_records", static_cast<std::uint64_t>(sample.true_records));
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
    out_ << "\n";
    content_.clear();
  }
}

}  // namespace ipfs::measure
