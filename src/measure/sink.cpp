#include "measure/sink.hpp"

#include <cstdio>
#include <optional>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <type_traits>
#include <utility>

#include "common/json.hpp"

namespace ipfs::measure {

std::string_view to_string(DatasetRole role) noexcept {
  switch (role) {
    case DatasetRole::kVantage: return "vantage";
    case DatasetRole::kHydraHead: return "hydra-head";
    case DatasetRole::kHydraUnion: return "hydra-union";
    case DatasetRole::kOther: break;
  }
  return "other";
}

std::optional<DatasetRole> role_from_string(std::string_view name) noexcept {
  for (const DatasetRole role : {DatasetRole::kVantage, DatasetRole::kHydraHead,
                                 DatasetRole::kHydraUnion, DatasetRole::kOther}) {
    if (to_string(role) == name) return role;
  }
  return std::nullopt;
}

const Dataset* CollectingSink::find(DatasetRole role) const noexcept {
  for (const Entry& entry : datasets_) {
    if (entry.role == role) return &entry.dataset;
  }
  return nullptr;
}

void ReplaySink::on_run_begin(const std::string& description) {
  events_.push_back(BeginEvent{description});
}

void ReplaySink::on_crawl(const CrawlObservation& crawl) { events_.push_back(crawl); }

void ReplaySink::on_population(const PopulationSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_provide(const ProvideSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_fetch(const FetchSample& sample) { events_.push_back(sample); }

void ReplaySink::on_content(const ContentSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_dataset(DatasetRole role, Dataset dataset) {
  events_.push_back(DatasetEvent{role, std::move(dataset)});
}

void ReplaySink::on_run_end(const RunSummary& summary) { events_.push_back(summary); }

void ReplaySink::replay(MeasurementSink& sink) {
  for (Event& event : events_) {
    std::visit(
        [&sink](auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, BeginEvent>) {
            sink.on_run_begin(e.description);
          } else if constexpr (std::is_same_v<T, CrawlObservation>) {
            sink.on_crawl(e);
          } else if constexpr (std::is_same_v<T, PopulationSample>) {
            sink.on_population(e);
          } else if constexpr (std::is_same_v<T, ProvideSample>) {
            sink.on_provide(e);
          } else if constexpr (std::is_same_v<T, FetchSample>) {
            sink.on_fetch(e);
          } else if constexpr (std::is_same_v<T, ContentSample>) {
            sink.on_content(e);
          } else if constexpr (std::is_same_v<T, DatasetEvent>) {
            sink.on_dataset(e.role, std::move(e.dataset));
          } else {
            sink.on_run_end(e);
          }
        },
        event);
  }
  events_.clear();
}

void FanOutSink::on_run_begin(const std::string& description) {
  for (MeasurementSink* sink : sinks_) sink->on_run_begin(description);
}

void FanOutSink::on_crawl(const CrawlObservation& crawl) {
  for (MeasurementSink* sink : sinks_) sink->on_crawl(crawl);
}

void FanOutSink::on_population(const PopulationSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_population(sample);
}

void FanOutSink::on_provide(const ProvideSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_provide(sample);
}

void FanOutSink::on_fetch(const FetchSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_fetch(sample);
}

void FanOutSink::on_content(const ContentSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_content(sample);
}

void FanOutSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (sinks_.empty()) return;
  for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) {
    sinks_[i]->on_dataset(role, dataset);  // copy for all but the last
  }
  sinks_.back()->on_dataset(role, std::move(dataset));
}

void FanOutSink::on_run_end(const RunSummary& summary) {
  for (MeasurementSink* sink : sinks_) sink->on_run_end(summary);
}

namespace {

/// Minimal write-only streambuf over a C `FILE*`: lets a `JsonWriter`
/// render straight into a `std::tmpfile()` spool.
class FileStreambuf final : public std::streambuf {
 public:
  explicit FileStreambuf(std::FILE* file) : file_(file) {}

 protected:
  int overflow(int ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
    return std::fputc(ch, file_) == EOF ? traits_type::eof() : ch;
  }
  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return static_cast<std::streamsize>(
        std::fwrite(data, 1, static_cast<std::size_t>(count), file_));
  }

 private:
  std::FILE* file_;
};

}  // namespace

/// One in-flight sample document.  Samples render into the spool as they
/// arrive; at run end the finished document is copied to the output and the
/// spool discarded.  The backing store is an unnamed temporary file so
/// memory stays O(1) in the sample count; when the platform refuses a
/// tmpfile the spool degrades to an in-memory buffer (same bytes, old
/// memory profile).
struct JsonExportSink::Spool {
  std::FILE* file = nullptr;
  std::optional<FileStreambuf> filebuf;
  std::ostringstream memory;  ///< fallback when `file` is null
  std::optional<std::ostream> stream;
  std::optional<common::JsonWriter> writer;

  ~Spool() {
    if (file != nullptr) std::fclose(file);
  }
};

JsonExportSink::JsonExportSink(std::ostream& out) : out_(out) {}

JsonExportSink::JsonExportSink(std::ostream& out, Options options)
    : out_(out), options_(options) {}

JsonExportSink::~JsonExportSink() = default;

JsonExportSink::Spool& JsonExportSink::spool(std::unique_ptr<Spool>& slot,
                                             std::string_view document_key) {
  if (!slot) {
    slot = std::make_unique<Spool>();
    slot->file = std::tmpfile();
    if (slot->file != nullptr) {
      slot->filebuf.emplace(slot->file);
      slot->stream.emplace(&*slot->filebuf);
    } else {
      slot->stream.emplace(slot->memory.rdbuf());
    }
    slot->writer.emplace(*slot->stream, options_.pretty);
    slot->writer->begin_object();
    slot->writer->key(document_key);
    slot->writer->begin_array();
  }
  return *slot;
}

void JsonExportSink::splice(std::unique_ptr<Spool>& slot) {
  if (!slot) return;
  slot->writer->end_array();
  slot->writer->end_object();
  *slot->stream << "\n";
  slot->stream->flush();
  if (slot->file != nullptr) {
    std::fflush(slot->file);
    std::rewind(slot->file);
    char buffer[1 << 16];
    std::size_t count = 0;
    while ((count = std::fread(buffer, 1, sizeof buffer, slot->file)) > 0) {
      out_.write(buffer, static_cast<std::streamsize>(count));
    }
    if (std::ferror(slot->file) != 0) {
      // fread stops on error as well as EOF; without this the export would
      // be silently truncated mid-document.
      out_.setstate(std::ios_base::failbit);
    }
  } else {
    out_ << slot->memory.str();
  }
  slot.reset();
}

void JsonExportSink::on_population(const PopulationSample& sample) {
  Spool& spool = this->spool(population_, "population_samples");
  spool.writer->begin_object();
  spool.writer->field("at_ms", static_cast<std::int64_t>(sample.at));
  spool.writer->field("online", static_cast<std::uint64_t>(sample.online));
  spool.writer->field("total", static_cast<std::uint64_t>(sample.total));
  spool.writer->field("connected", static_cast<std::uint64_t>(sample.connected));
  spool.writer->end_object();
}

void JsonExportSink::on_provide(const ProvideSample& sample) {
  Spool& spool = this->spool(provides_, "provide_samples");
  spool.writer->begin_object();
  spool.writer->field("at_ms", static_cast<std::int64_t>(sample.at));
  spool.writer->field("key", static_cast<std::uint64_t>(sample.key));
  spool.writer->field("provider", static_cast<std::uint64_t>(sample.provider));
  spool.writer->field("republish", sample.republish);
  spool.writer->end_object();
}

void JsonExportSink::on_fetch(const FetchSample& sample) {
  Spool& spool = this->spool(fetches_, "fetch_samples");
  spool.writer->begin_object();
  spool.writer->field("at_ms", static_cast<std::int64_t>(sample.at));
  spool.writer->field("key", static_cast<std::uint64_t>(sample.key));
  spool.writer->field("found_provider", sample.found_provider);
  spool.writer->field("served", sample.served);
  spool.writer->field("latency_ms", static_cast<std::int64_t>(sample.latency));
  spool.writer->end_object();
}

void JsonExportSink::on_content(const ContentSample& sample) {
  Spool& spool = this->spool(content_, "content_samples");
  spool.writer->begin_object();
  spool.writer->field("at_ms", static_cast<std::int64_t>(sample.at));
  spool.writer->field("vantage_records",
                      static_cast<std::uint64_t>(sample.vantage_records));
  spool.writer->field("vantage_keys",
                      static_cast<std::uint64_t>(sample.vantage_keys));
  spool.writer->field("true_records",
                      static_cast<std::uint64_t>(sample.true_records));
  spool.writer->end_object();
}

void JsonExportSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (options_.role_filter && *options_.role_filter != role) return;
  dataset.export_json(out_, options_.include_connections, options_.pretty);
  out_ << "\n";
  ++exported_;
}

void JsonExportSink::on_run_end(const RunSummary& summary) {
  // Non-churned, non-content runs opened no spool and export nothing extra
  // here, so legacy exports stay byte-identical.
  splice(population_);
  splice(provides_);
  splice(fetches_);
  splice(content_);
  // Phased runs append one `phase_breakdown` document: the per-phase
  // activity totals.  Empty unless a phase program ran, so non-phased
  // exports stay byte-identical.
  if (summary.phases.empty()) return;
  common::JsonWriter writer(out_, options_.pretty);
  writer.begin_object();
  writer.key("phase_breakdown");
  writer.begin_array();
  for (const PhaseSummary& phase : summary.phases) {
    writer.begin_object();
    writer.field("name", std::string_view(phase.name));
    writer.field("mode", std::string_view(phase.mode));
    writer.field("start_ms", static_cast<std::int64_t>(phase.start));
    writer.field("hold_ms", static_cast<std::int64_t>(phase.hold));
    writer.field("sessions", phase.sessions);
    writer.field("provides", phase.provides);
    writer.field("fetches", phase.fetches);
    writer.field("crawls", phase.crawls);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  out_ << "\n";
}

}  // namespace ipfs::measure
