#include "measure/sink.hpp"

#include <ostream>

namespace ipfs::measure {

std::string_view to_string(DatasetRole role) noexcept {
  switch (role) {
    case DatasetRole::kVantage: return "vantage";
    case DatasetRole::kHydraHead: return "hydra-head";
    case DatasetRole::kHydraUnion: return "hydra-union";
    case DatasetRole::kOther: break;
  }
  return "other";
}

const Dataset* CollectingSink::find(DatasetRole role) const noexcept {
  for (const Entry& entry : datasets_) {
    if (entry.role == role) return &entry.dataset;
  }
  return nullptr;
}

void FanOutSink::on_run_begin(const std::string& description) {
  for (MeasurementSink* sink : sinks_) sink->on_run_begin(description);
}

void FanOutSink::on_crawl(const CrawlObservation& crawl) {
  for (MeasurementSink* sink : sinks_) sink->on_crawl(crawl);
}

void FanOutSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (sinks_.empty()) return;
  for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) {
    sinks_[i]->on_dataset(role, dataset);  // copy for all but the last
  }
  sinks_.back()->on_dataset(role, std::move(dataset));
}

void FanOutSink::on_run_end(const RunSummary& summary) {
  for (MeasurementSink* sink : sinks_) sink->on_run_end(summary);
}

void JsonExportSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (options_.role_filter && *options_.role_filter != role) return;
  dataset.export_json(out_, options_.include_connections);
  out_ << "\n";
  ++exported_;
}

}  // namespace ipfs::measure
