#include "measure/sink.hpp"

#include <ostream>
#include <type_traits>
#include <utility>

#include "common/json.hpp"

namespace ipfs::measure {

std::string_view to_string(DatasetRole role) noexcept {
  switch (role) {
    case DatasetRole::kVantage: return "vantage";
    case DatasetRole::kHydraHead: return "hydra-head";
    case DatasetRole::kHydraUnion: return "hydra-union";
    case DatasetRole::kOther: break;
  }
  return "other";
}

std::optional<DatasetRole> role_from_string(std::string_view name) noexcept {
  for (const DatasetRole role : {DatasetRole::kVantage, DatasetRole::kHydraHead,
                                 DatasetRole::kHydraUnion, DatasetRole::kOther}) {
    if (to_string(role) == name) return role;
  }
  return std::nullopt;
}

const Dataset* CollectingSink::find(DatasetRole role) const noexcept {
  for (const Entry& entry : datasets_) {
    if (entry.role == role) return &entry.dataset;
  }
  return nullptr;
}

void ReplaySink::on_run_begin(const std::string& description) {
  events_.push_back(BeginEvent{description});
}

void ReplaySink::on_crawl(const CrawlObservation& crawl) { events_.push_back(crawl); }

void ReplaySink::on_population(const PopulationSample& sample) {
  events_.push_back(sample);
}

void ReplaySink::on_dataset(DatasetRole role, Dataset dataset) {
  events_.push_back(DatasetEvent{role, std::move(dataset)});
}

void ReplaySink::on_run_end(const RunSummary& summary) { events_.push_back(summary); }

void ReplaySink::replay(MeasurementSink& sink) {
  for (Event& event : events_) {
    std::visit(
        [&sink](auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, BeginEvent>) {
            sink.on_run_begin(e.description);
          } else if constexpr (std::is_same_v<T, CrawlObservation>) {
            sink.on_crawl(e);
          } else if constexpr (std::is_same_v<T, PopulationSample>) {
            sink.on_population(e);
          } else if constexpr (std::is_same_v<T, DatasetEvent>) {
            sink.on_dataset(e.role, std::move(e.dataset));
          } else {
            sink.on_run_end(e);
          }
        },
        event);
  }
  events_.clear();
}

void FanOutSink::on_run_begin(const std::string& description) {
  for (MeasurementSink* sink : sinks_) sink->on_run_begin(description);
}

void FanOutSink::on_crawl(const CrawlObservation& crawl) {
  for (MeasurementSink* sink : sinks_) sink->on_crawl(crawl);
}

void FanOutSink::on_population(const PopulationSample& sample) {
  for (MeasurementSink* sink : sinks_) sink->on_population(sample);
}

void FanOutSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (sinks_.empty()) return;
  for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) {
    sinks_[i]->on_dataset(role, dataset);  // copy for all but the last
  }
  sinks_.back()->on_dataset(role, std::move(dataset));
}

void FanOutSink::on_run_end(const RunSummary& summary) {
  for (MeasurementSink* sink : sinks_) sink->on_run_end(summary);
}

void JsonExportSink::on_population(const PopulationSample& sample) {
  population_.push_back(sample);
}

void JsonExportSink::on_dataset(DatasetRole role, Dataset dataset) {
  if (options_.role_filter && *options_.role_filter != role) return;
  dataset.export_json(out_, options_.include_connections, options_.pretty);
  out_ << "\n";
  ++exported_;
}

void JsonExportSink::on_run_end(const RunSummary& summary) {
  (void)summary;
  if (population_.empty()) return;  // non-churned runs export nothing extra
  common::JsonWriter writer(out_, options_.pretty);
  writer.begin_object();
  writer.key("population_samples");
  writer.begin_array();
  for (const PopulationSample& sample : population_) {
    writer.begin_object();
    writer.field("at_ms", static_cast<std::int64_t>(sample.at));
    writer.field("online", static_cast<std::uint64_t>(sample.online));
    writer.field("total", static_cast<std::uint64_t>(sample.total));
    writer.field("connected", static_cast<std::uint64_t>(sample.connected));
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  out_ << "\n";
  population_.clear();
}

}  // namespace ipfs::measure
