// The passive measurement recorder.
//
// Mirrors the instrumentation the paper added to its clients (§III-A:
// go-ipfs polled peer and connection data every 30 s; §III-B: hydra's extra
// PeriodicTasks ran every 1 min).  The recorder observes a swarm and its
// peerstore and accumulates a `Dataset`.  Timestamps are quantised to the
// poll interval, reproducing the paper's caveat that "connection
// information is only refreshed every 30 s and the real values should be
// slightly smaller than shown".
#pragma once

#include <string>

#include "measure/dataset.hpp"
#include "measure/sink.hpp"
#include "p2p/peerstore.hpp"
#include "p2p/swarm.hpp"
#include "sim/simulation.hpp"

namespace ipfs::measure {

/// Recorder configuration.
struct RecorderConfig {
  std::string vantage = "go-ipfs";
  /// Observation resolution; 30 s for go-ipfs, 1 min for hydra heads.
  common::SimDuration poll_interval = 30 * common::kSecond;
  /// When true, open/close timestamps round *up* to the next poll tick, as
  /// a polling observer would see them.
  bool quantize = true;
};

/// Attaches to one swarm and builds the measurement dataset.
class Recorder : public p2p::SwarmObserver, public p2p::PeerstoreObserver {
 public:
  Recorder(sim::Simulation& simulation, p2p::Swarm& swarm, RecorderConfig config);
  ~Recorder() override;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Begin recording (marks measurement_start).
  void start();

  /// End the measurement: connections still open are recorded as closed now
  /// with reason kMeasurementEnd — the paper's Table II convention.
  void finish();

  [[nodiscard]] const Dataset& dataset() const noexcept { return dataset_; }
  [[nodiscard]] Dataset& dataset() noexcept { return dataset_; }

  /// Move the dataset out (recorder becomes inert).
  [[nodiscard]] Dataset take_dataset() { return std::move(dataset_); }

  /// Finish (if still recording) and move the dataset into `sink` under the
  /// given role.  The recorder becomes inert.
  void publish(MeasurementSink& sink, DatasetRole role = DatasetRole::kOther);

  // p2p::SwarmObserver
  void on_connection_opened(const p2p::Connection& connection) override;
  void on_connection_closed(const p2p::Connection& connection) override;

  // p2p::PeerstoreObserver
  void on_peer_added(const p2p::PeerId& peer, SimTime now) override;
  void on_agent_changed(const p2p::PeerId& peer, const std::string& previous,
                        const std::string& current, SimTime now) override;
  void on_protocols_changed(const p2p::PeerId& peer,
                            const std::vector<std::string>& added,
                            const std::vector<std::string>& removed,
                            SimTime now) override;
  void on_address_added(const p2p::PeerId& peer, const p2p::Multiaddr& address,
                        SimTime now) override;

 private:
  [[nodiscard]] SimTime observe_time(SimTime actual) const noexcept;

  sim::Simulation& simulation_;
  p2p::Swarm& swarm_;
  RecorderConfig config_;
  Dataset dataset_;
  /// Open-connection bookkeeping: connection id -> (peer index, observed
  /// open time, direction).
  struct OpenConn {
    PeerIndex peer;
    SimTime opened;
    p2p::Direction direction;
  };
  std::unordered_map<p2p::ConnectionId, OpenConn> open_;
  bool recording_ = false;
};

}  // namespace ipfs::measure
