#include "measure/dataset.hpp"

#include <algorithm>
#include <ostream>

#include "common/json.hpp"

namespace ipfs::measure {

PeerIndex Dataset::intern(const p2p::PeerId& pid, SimTime now) {
  const auto it = index_.find(pid);
  if (it != index_.end()) {
    PeerRecord& existing = peers_[it->second];
    existing.last_seen = std::max(existing.last_seen, now);
    return it->second;
  }
  const auto index = static_cast<PeerIndex>(peers_.size());
  PeerRecord record;
  record.pid = pid;
  record.first_seen = now;
  record.last_seen = now;
  peers_.push_back(std::move(record));
  index_.emplace(pid, index);
  by_peer_cache_.clear();
  return index;
}

const PeerRecord* Dataset::find(const p2p::PeerId& pid) const {
  const auto it = index_.find(pid);
  return it == index_.end() ? nullptr : &peers_[it->second];
}

const std::vector<std::vector<std::uint32_t>>& Dataset::connections_by_peer() const {
  if (by_peer_cache_.size() != peers_.size() || peers_.empty()) {
    by_peer_cache_.assign(peers_.size(), {});
    for (std::uint32_t i = 0; i < connections_.size(); ++i) {
      by_peer_cache_[connections_[i].peer].push_back(i);
    }
  }
  return by_peer_cache_;
}

void Dataset::merge(const Dataset& other) {
  measurement_start = peers_.empty() && connections_.empty()
                          ? other.measurement_start
                          : std::min(measurement_start, other.measurement_start);
  measurement_end = std::max(measurement_end, other.measurement_end);

  std::vector<PeerIndex> remap(other.peers_.size());
  for (std::size_t i = 0; i < other.peers_.size(); ++i) {
    const PeerRecord& theirs = other.peers_[i];
    const PeerIndex mine = intern(theirs.pid, theirs.first_seen);
    remap[i] = mine;
    PeerRecord& ours = peers_[mine];
    ours.first_seen = std::min(ours.first_seen, theirs.first_seen);
    ours.last_seen = std::max(ours.last_seen, theirs.last_seen);
    ours.ever_dht_server = ours.ever_dht_server || theirs.ever_dht_server;
    ours.agent_history.insert(ours.agent_history.end(), theirs.agent_history.begin(),
                              theirs.agent_history.end());
    std::sort(ours.agent_history.begin(), ours.agent_history.end(),
              [](const AgentEvent& a, const AgentEvent& b) { return a.at < b.at; });
    ours.protocol_events.insert(ours.protocol_events.end(),
                                theirs.protocol_events.begin(),
                                theirs.protocol_events.end());
    std::sort(ours.protocol_events.begin(), ours.protocol_events.end(),
              [](const ProtocolEvent& a, const ProtocolEvent& b) { return a.at < b.at; });
    ours.protocols_ever.insert(theirs.protocols_ever.begin(),
                               theirs.protocols_ever.end());
    ours.connected_ips.insert(theirs.connected_ips.begin(), theirs.connected_ips.end());
  }

  connections_.reserve(connections_.size() + other.connections_.size());
  for (ConnRecord record : other.connections_) {
    record.peer = remap[record.peer];
    connections_.push_back(record);
  }
  by_peer_cache_.clear();
}

void Dataset::export_json(std::ostream& out, bool include_connections,
                          bool pretty) const {
  common::JsonWriter json(out, pretty);
  json.begin_object();
  json.field("vantage", vantage);
  json.field("measurement_start_ms", measurement_start);
  json.field("measurement_end_ms", measurement_end);
  json.key("peers");
  json.begin_array();
  for (const PeerRecord& peer : peers_) {
    json.begin_object();
    json.field("pid", peer.pid.to_string());
    json.field("first_seen_ms", peer.first_seen);
    json.field("last_seen_ms", peer.last_seen);
    json.field("ever_dht_server", peer.ever_dht_server);
    json.key("agents");
    json.begin_array();
    for (const AgentEvent& event : peer.agent_history) {
      json.begin_object();
      json.field("at_ms", event.at);
      json.field("agent", event.agent);
      json.end_object();
    }
    json.end_array();
    json.key("protocols_ever");
    json.begin_array();
    for (const std::string& protocol : peer.protocols_ever) json.value(protocol);
    json.end_array();
    json.key("connected_ips");
    json.begin_array();
    for (const p2p::IpAddress& ip : peer.connected_ips) json.value(ip.to_string());
    json.end_array();
    json.end_object();
  }
  json.end_array();
  if (include_connections) {
    json.key("connections");
    json.begin_array();
    for (const ConnRecord& record : connections_) {
      json.begin_object();
      json.field("peer", static_cast<std::uint64_t>(record.peer));
      json.field("opened_ms", record.opened);
      json.field("closed_ms", record.closed);
      json.field("direction", p2p::to_string(record.direction));
      json.field("reason", p2p::to_string(record.reason));
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  out << '\n';
}

}  // namespace ipfs::measure
