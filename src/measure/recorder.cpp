#include "measure/recorder.hpp"

#include <algorithm>

#include "p2p/protocols.hpp"

namespace ipfs::measure {

Recorder::Recorder(sim::Simulation& simulation, p2p::Swarm& swarm,
                   RecorderConfig config)
    : simulation_(simulation), swarm_(swarm), config_(std::move(config)) {
  dataset_.vantage = config_.vantage;
  swarm_.add_observer(this);
  swarm_.peerstore().add_observer(this);
}

Recorder::~Recorder() { swarm_.remove_observer(this); }

SimTime Recorder::observe_time(SimTime actual) const noexcept {
  if (!config_.quantize || config_.poll_interval <= 0) return actual;
  const auto interval = config_.poll_interval;
  // A polling observer first notices a change at the next tick.
  return ((actual + interval - 1) / interval) * interval;
}

void Recorder::start() {
  recording_ = true;
  dataset_.measurement_start = simulation_.now();
  dataset_.measurement_end = simulation_.now();
}

void Recorder::finish() {
  if (!recording_) return;
  recording_ = false;
  dataset_.measurement_end = simulation_.now();
  // Paper convention: "All connections still active at the end of the
  // measurement are considered to be closed at that moment."
  for (const auto& [id, open] : open_) {
    ConnRecord record;
    record.peer = open.peer;
    record.opened = open.opened;
    record.closed = dataset_.measurement_end;
    record.direction = open.direction;
    record.reason = p2p::CloseReason::kMeasurementEnd;
    dataset_.add_connection(record);
  }
  open_.clear();
}

void Recorder::publish(MeasurementSink& sink, DatasetRole role) {
  finish();
  sink.on_dataset(role, take_dataset());
}

void Recorder::on_connection_opened(const p2p::Connection& connection) {
  if (!recording_) return;
  const SimTime now = observe_time(simulation_.now());
  const PeerIndex peer = dataset_.intern(connection.remote, now);
  dataset_.record(peer).connected_ips.insert(connection.remote_addr.ip);
  open_[connection.id] = {peer, now, connection.direction};
}

void Recorder::on_connection_closed(const p2p::Connection& connection) {
  if (!recording_) return;
  const auto it = open_.find(connection.id);
  if (it == open_.end()) return;  // opened before the measurement started
  const OpenConn open = it->second;
  open_.erase(it);
  ConnRecord record;
  record.peer = open.peer;
  record.opened = open.opened;
  // The close is also first *observed* at a poll tick; clamp so duration
  // stays non-negative after quantisation.
  record.closed = std::max(observe_time(simulation_.now()), open.opened);
  record.direction = open.direction;
  record.reason = connection.reason;
  dataset_.add_connection(record);
  dataset_.record(open.peer).last_seen =
      std::max(dataset_.record(open.peer).last_seen, record.closed);
}

void Recorder::on_peer_added(const p2p::PeerId& peer, SimTime now) {
  if (!recording_) return;
  dataset_.intern(peer, observe_time(now));
}

void Recorder::on_agent_changed(const p2p::PeerId& peer, const std::string& previous,
                                const std::string& current, SimTime now) {
  if (!recording_) return;
  (void)previous;
  const SimTime at = observe_time(now);
  const PeerIndex index = dataset_.intern(peer, at);
  dataset_.record(index).agent_history.push_back({at, current});
}

void Recorder::on_protocols_changed(const p2p::PeerId& peer,
                                    const std::vector<std::string>& added,
                                    const std::vector<std::string>& removed,
                                    SimTime now) {
  if (!recording_) return;
  const SimTime at = observe_time(now);
  const PeerIndex index = dataset_.intern(peer, at);
  PeerRecord& record = dataset_.record(index);
  for (const std::string& protocol : added) {
    record.protocol_events.push_back({at, protocol, true});
    record.protocols_ever.insert(protocol);
    if (p2p::protocols::marks_dht_server(protocol)) record.ever_dht_server = true;
  }
  for (const std::string& protocol : removed) {
    record.protocol_events.push_back({at, protocol, false});
  }
}

void Recorder::on_address_added(const p2p::PeerId& peer, const p2p::Multiaddr& address,
                                SimTime now) {
  if (!recording_) return;
  // Addresses learned via identify are *announced*, not necessarily
  // *connected*; §V-A groups by connected address, which
  // on_connection_opened captures.  We still intern the peer so
  // identify-only peers appear in the PID counts.
  (void)address;
  dataset_.intern(peer, observe_time(now));
}

}  // namespace ipfs::measure
