// Mergeable per-shard partial tallies (DESIGN.md §13).
//
// A sharded campaign's whole-population sweeps — the ground-truth online
// count behind each `PopulationSample`, the true-record count behind each
// `ContentSample` — are computed as one partial tally per population
// shard and folded in canonical ascending shard order into the exact
// value the sequential sweep produces.  The partials exist so shard
// bodies never touch a shared accumulator: each writes only its own slot,
// and the fold happens after the fork-join barrier on the engine thread.
//
// The folds here are integer sums, so they are order-independent as
// well as order-canonical — byte-identity of the samples fed into the
// existing `MeasurementSink`s holds at any shard count by construction.
#pragma once

#include <cstddef>
#include <span>

namespace ipfs::measure {

/// Partial ground-truth population tally of one shard's peer slice.
struct PopulationTally {
  std::size_t online = 0;  ///< peers of the slice truly inside a session

  void merge(const PopulationTally& other) noexcept { online += other.online; }
};

/// Partial ground-truth content tally of one shard's peer slice.
struct ContentTally {
  std::size_t true_records = 0;  ///< provider slots of truly-online peers

  void merge(const ContentTally& other) noexcept {
    true_records += other.true_records;
  }
};

/// Fold shard partials in canonical ascending shard order.  `partials`
/// must be indexed by shard.
template <typename Tally>
[[nodiscard]] Tally fold_shards(std::span<const Tally> partials) noexcept {
  Tally total;
  for (const Tally& partial : partials) total.merge(partial);
  return total;
}

// Explicit concrete entry points (shard_tally.cpp) so the fold policy has
// a home that unit tests and the campaign engine share without template
// re-instantiation at every call site.
[[nodiscard]] PopulationTally fold(std::span<const PopulationTally> partials) noexcept;
[[nodiscard]] ContentTally fold(std::span<const ContentTally> partials) noexcept;

}  // namespace ipfs::measure
