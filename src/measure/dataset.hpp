// The passive-measurement dataset (§III-A/B).
//
// Everything the paper analyses comes from two record streams per vantage
// node: (1) connection events — per connection-id: direction, open/close
// timestamps, close attribution — and (2) peerstore observations — per PID:
// agent strings, protocol announcements and multiaddresses, each change
// timestamped.  `Dataset` is the in-memory form of the JSON files the
// paper's clients exported; `analysis::*` consumes it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"
#include "p2p/connection.hpp"
#include "p2p/multiaddr.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::measure {

using common::SimDuration;
using common::SimTime;

/// Index of a peer within a dataset.
using PeerIndex = std::uint32_t;

/// One recorded connection (closed, or force-closed at measurement end).
struct ConnRecord {
  PeerIndex peer = 0;
  SimTime opened = 0;
  SimTime closed = 0;
  p2p::Direction direction = p2p::Direction::kInbound;
  p2p::CloseReason reason = p2p::CloseReason::kNone;

  [[nodiscard]] SimDuration duration() const noexcept { return closed - opened; }
};

/// A timestamped agent-version observation.
struct AgentEvent {
  SimTime at = 0;
  std::string agent;
};

/// A timestamped protocol announcement change.
struct ProtocolEvent {
  SimTime at = 0;
  std::string protocol;
  bool added = true;
};

/// Everything recorded about one PID.
struct PeerRecord {
  p2p::PeerId pid;
  SimTime first_seen = 0;
  SimTime last_seen = 0;
  /// Agent strings in observation order; empty if identify never completed
  /// (the paper's "missing" category, 3'059 PIDs).
  std::vector<AgentEvent> agent_history;
  /// Full protocol change log (adds and removals).
  std::vector<ProtocolEvent> protocol_events;
  /// Every protocol ever announced.
  std::set<std::string> protocols_ever;
  /// IPs this PID *connected from* (the §V-A grouping key).
  std::set<p2p::IpAddress> connected_ips;
  bool ever_dht_server = false;

  [[nodiscard]] const std::string& current_agent() const {
    static const std::string kEmpty;
    return agent_history.empty() ? kEmpty : agent_history.back().agent;
  }
};

/// A complete measurement dataset from one vantage (or a merged union).
class Dataset {
 public:
  /// Name shown in tables ("go-ipfs", "Hydra H0", …).
  std::string vantage;
  SimTime measurement_start = 0;
  SimTime measurement_end = 0;

  [[nodiscard]] SimDuration duration() const noexcept {
    return measurement_end - measurement_start;
  }

  /// Find-or-create the record for a PID.
  PeerIndex intern(const p2p::PeerId& pid, SimTime now);

  [[nodiscard]] const PeerRecord* find(const p2p::PeerId& pid) const;
  [[nodiscard]] PeerRecord& record(PeerIndex index) { return peers_[index]; }
  [[nodiscard]] const PeerRecord& record(PeerIndex index) const { return peers_[index]; }

  [[nodiscard]] const std::vector<PeerRecord>& peers() const noexcept { return peers_; }
  [[nodiscard]] std::vector<PeerRecord>& peers() noexcept { return peers_; }
  [[nodiscard]] const std::vector<ConnRecord>& connections() const noexcept {
    return connections_;
  }

  void add_connection(ConnRecord record) { connections_.push_back(record); }

  [[nodiscard]] std::size_t peer_count() const noexcept { return peers_.size(); }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return connections_.size();
  }

  /// Per-peer connection lists (built on demand, cached).
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& connections_by_peer()
      const;

  /// Union-merge another vantage's dataset into this one (the paper reports
  /// the hydra as the union of its heads, §III-C).  Connection records keep
  /// their own timestamps; peer metadata merges field-wise.
  void merge(const Dataset& other);

  /// Export in the spirit of the paper's periodic JSON dumps.
  void export_json(std::ostream& out, bool include_connections = true,
                   bool pretty = true) const;

 private:
  std::vector<PeerRecord> peers_;
  std::unordered_map<p2p::PeerId, PeerIndex> index_;
  std::vector<ConnRecord> connections_;
  mutable std::vector<std::vector<std::uint32_t>> by_peer_cache_;
};

}  // namespace ipfs::measure
