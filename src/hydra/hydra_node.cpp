#include "hydra/hydra_node.hpp"

namespace ipfs::hydra {

HydraNode::HydraNode(sim::Simulation& simulation, net::Network& network,
                     common::Rng rng, p2p::IpAddress ip, HydraConfig config) {
  heads_.reserve(static_cast<std::size_t>(config.head_count));
  for (int i = 0; i < config.head_count; ++i) {
    // Spread head identities evenly across the keyspace: head i gets the
    // prefix i * 2^64 / head_count in its top bits.
    const std::uint64_t prefix =
        config.head_count <= 1
            ? 0
            : static_cast<std::uint64_t>(i) *
                  (~0ULL / static_cast<std::uint64_t>(config.head_count));
    const auto head_id = p2p::PeerId::with_prefix(prefix, 16, rng);

    node::NodeConfig node_config;
    node_config.agent = config.agent;
    node_config.dht_mode = dht::Mode::kServer;
    node_config.conn_manager = config.per_head;
    node_config.trim_enabled = config.trim_enabled;
    node_config.announce_bitswap = false;  // hydra heads serve the DHT only
    node_config.announce_autonat = false;

    const p2p::Multiaddr address{ip, p2p::Transport::kTcp,
                                 static_cast<std::uint16_t>(config.base_port + i)};
    heads_.push_back(std::make_unique<node::GoIpfsNode>(simulation, network, head_id,
                                                        address, node_config));
  }
}

void HydraNode::start() {
  for (auto& head : heads_) head->start();
}

void HydraNode::stop() {
  for (auto& head : heads_) head->stop();
}

void HydraNode::bootstrap(const std::vector<p2p::PeerId>& peers) {
  for (auto& head : heads_) head->bootstrap(peers);
}

void HydraNode::put_record(const dht::RecordKey& key, const p2p::PeerId& provider,
                           common::SimTime now) {
  belly_.put(key, provider, now);
}

std::set<p2p::PeerId> HydraNode::union_known_pids() const {
  std::set<p2p::PeerId> pids;
  for (const auto& head : heads_) {
    for (const auto& [pid, entry] : head->swarm().peerstore().entries()) {
      pids.insert(pid);
    }
  }
  return pids;
}

std::size_t HydraNode::total_open_connections() const {
  std::size_t total = 0;
  for (const auto& head : heads_) total += head->swarm().open_count();
  return total;
}

}  // namespace ipfs::hydra
