// Hydra-booster node (§III-B).
//
// A hydra deploys multiple "heads" — full DHT-server identities with
// distinct PIDs spread across the keyspace — on one machine, all sharing a
// single "belly" of provider records.  The broader keyspace coverage is why
// the paper's hydra vantage sees more PIDs than the single go-ipfs node
// (Fig. 2), and the union of head peerstores is what the paper reports.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "dht/record_store.hpp"
#include "node/go_ipfs_node.hpp"

namespace ipfs::hydra {

/// Configuration of a hydra deployment.
struct HydraConfig {
  int head_count = 2;
  std::string agent = "hydra-booster/0.7.4";
  /// Per-head connection-manager watermarks (Table I: P0 ran 1.2k/1.8k).
  p2p::ConnManagerConfig per_head = p2p::ConnManagerConfig::with_watermarks(1200, 1800);
  bool trim_enabled = true;
  std::uint16_t base_port = 3001;  ///< heads listen on base_port, base_port+1, …
};

/// A multi-head DHT accelerator node.
class HydraNode {
 public:
  /// Head PIDs are placed at evenly spaced keyspace prefixes so coverage is
  /// maximal for the head count (hydra-booster's balanced generation).
  HydraNode(sim::Simulation& simulation, net::Network& network, common::Rng rng,
            p2p::IpAddress ip, HydraConfig config);

  HydraNode(const HydraNode&) = delete;
  HydraNode& operator=(const HydraNode&) = delete;

  void start();
  void stop();
  void bootstrap(const std::vector<p2p::PeerId>& peers);

  [[nodiscard]] std::size_t head_count() const noexcept { return heads_.size(); }
  [[nodiscard]] node::GoIpfsNode& head(std::size_t index) { return *heads_.at(index); }
  [[nodiscard]] const node::GoIpfsNode& head(std::size_t index) const {
    return *heads_.at(index);
  }

  /// The shared record belly.
  [[nodiscard]] dht::RecordStore& belly() noexcept { return belly_; }

  /// Store a provider record through any head (they share the belly).
  void put_record(const dht::RecordKey& key, const p2p::PeerId& provider,
                  common::SimTime now);

  /// Union of PIDs known across all head peerstores — the number the paper
  /// reports for the hydra vantage (§III-C: "The number of PIDs for the
  /// Hydra are the union of all heads").
  [[nodiscard]] std::set<p2p::PeerId> union_known_pids() const;

  /// Total open connections across heads (Fig. 5's hydra series).
  [[nodiscard]] std::size_t total_open_connections() const;

 private:
  dht::RecordStore belly_;
  std::vector<std::unique_ptr<node::GoIpfsNode>> heads_;
};

}  // namespace ipfs::hydra
