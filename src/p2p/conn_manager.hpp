// Connection manager: go-libp2p's watermark-based connection trimming.
//
// This is the mechanism at the heart of the paper: once a node holds more
// than `HighWater` connections, the manager closes the lowest-valued
// connections outside the grace period until only `LowWater` remain
// (§III, §IV-A).  go-ipfs defaults are LowWater=600 / HighWater=900 /
// GracePeriod=20 s; the paper's Table I varies exactly these knobs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"
#include "p2p/connection.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::p2p {

/// Watermark configuration of the connection manager.
struct ConnManagerConfig {
  int low_water = 600;
  int high_water = 900;
  common::SimDuration grace_period = 20 * common::kSecond;
  /// How often the background trim loop runs (go-libp2p uses 10 s ticks;
  /// trims also fire immediately when HighWater is crossed).
  common::SimDuration check_interval = 10 * common::kSecond;

  [[nodiscard]] static ConnManagerConfig go_ipfs_default() { return {}; }
  [[nodiscard]] static ConnManagerConfig with_watermarks(int low, int high) {
    ConnManagerConfig config;
    config.low_water = low;
    config.high_water = high;
    return config;
  }
};

/// Decides which connections to trim.  The swarm owns the connection table;
/// this class owns only tag values and protection flags.
class ConnManager {
 public:
  explicit ConnManager(ConnManagerConfig config) : config_(config) {}

  [[nodiscard]] const ConnManagerConfig& config() const noexcept { return config_; }

  /// Tag a peer with a value; higher values survive trims longer.  The DHT
  /// tags routing-table members, keeping them connected (§III-A: "Other
  /// nodes rather connect and maintain a connection to a DHT-Server").
  void set_tag(const PeerId& peer, int value) { tags_[peer] = value; }
  void clear_tag(const PeerId& peer) { tags_.erase(peer); }
  [[nodiscard]] int tag(const PeerId& peer) const;

  /// Protected peers are never trimmed (bootstrap peers etc.).
  void protect(const PeerId& peer) { protected_.insert(peer); }
  void unprotect(const PeerId& peer) { protected_.erase(peer); }
  [[nodiscard]] bool is_protected(const PeerId& peer) const {
    return protected_.contains(peer);
  }

  /// Given the currently open connections, return the ids to close so the
  /// table returns to LowWater.  Empty unless `open.size() > HighWater`.
  /// Candidates within the grace period or protected are skipped; remaining
  /// candidates close in ascending (tag, age) order — the newest of the
  /// lowest-valued go first, mirroring go-libp2p's segment sort.
  [[nodiscard]] std::vector<ConnectionId> plan_trim(
      const std::vector<const Connection*>& open, common::SimTime now) const;

 private:
  ConnManagerConfig config_;
  std::unordered_map<PeerId, int> tags_;
  std::unordered_set<PeerId> protected_;
};

}  // namespace ipfs::p2p
