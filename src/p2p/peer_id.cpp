#include "p2p/peer_id.hpp"

#include "common/rng.hpp"

namespace ipfs::p2p {

PeerId PeerId::from_seed(std::uint64_t key_seed) noexcept {
  PeerId id;
  std::uint64_t state = key_seed;
  id.words_[0] = common::splitmix64(state);
  id.words_[1] = common::splitmix64(state);
  id.words_[2] = common::splitmix64(state);
  id.words_[3] = common::splitmix64(state);
  return id;
}

PeerId PeerId::random(common::Rng& rng) noexcept { return from_seed(rng()); }

PeerId PeerId::with_prefix(std::uint64_t prefix, unsigned prefix_bits,
                           common::Rng& rng) noexcept {
  PeerId id = random(rng);
  if (prefix_bits == 0) return id;
  if (prefix_bits > 64) prefix_bits = 64;
  const std::uint64_t mask =
      prefix_bits == 64 ? ~0ULL : ~0ULL << (64 - prefix_bits);
  id.words_[0] = (prefix & mask) | (id.words_[0] & ~mask);
  return id;
}

std::size_t PeerId::leading_zero_bits() const noexcept {
  std::size_t zeros = 0;
  for (const std::uint64_t word : words_) {
    if (word == 0) {
      zeros += 64;
      continue;
    }
    zeros += static_cast<std::size_t>(__builtin_clzll(word));
    break;
  }
  return zeros;
}

std::string PeerId::to_string() const {
  // Base58 alphabet over the first 72 bits, prefixed like a go-libp2p
  // Ed25519 peer id for readability in logs and tables.
  static constexpr char kAlphabet[] =
      "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
  std::string out = "12D3KooW";
  std::uint64_t value = words_[0];
  for (int i = 0; i < 11; ++i) {
    out.push_back(kAlphabet[value % 58]);
    value /= 58;
    if (i == 9) value ^= words_[1];  // fold in more entropy for uniqueness
  }
  return out;
}

}  // namespace ipfs::p2p
