// Peerstore: the per-node database of everything known about other peers.
//
// go-ipfs keeps address, protocol and agent-version books; the paper's
// measurement clients poll exactly these books every 30 s (go-ipfs) / 1 min
// (hydra) and log changes with timestamps (§III-A/B).  Observers registered
// here receive those change events synchronously.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "p2p/multiaddr.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::p2p {

using common::SimTime;

/// Receives peerstore mutation events (used by measure::Recorder).
class PeerstoreObserver {
 public:
  virtual ~PeerstoreObserver() = default;
  virtual void on_peer_added(const PeerId& peer, SimTime now) = 0;
  virtual void on_agent_changed(const PeerId& peer, const std::string& previous,
                                const std::string& current, SimTime now) = 0;
  virtual void on_protocols_changed(const PeerId& peer,
                                    const std::vector<std::string>& added,
                                    const std::vector<std::string>& removed,
                                    SimTime now) = 0;
  virtual void on_address_added(const PeerId& peer, const Multiaddr& address,
                                SimTime now) = 0;
};

/// Address / protocol / agent books for one node.
class Peerstore {
 public:
  struct Entry {
    std::string agent;                 ///< empty until identify succeeded
    std::set<std::string> protocols;   ///< currently announced protocols
    std::set<Multiaddr> addresses;     ///< all multiaddresses ever observed
    SimTime first_seen = 0;
    SimTime last_seen = 0;
    bool ever_dht_server = false;  ///< announced /ipfs/kad/1.0.0 at least once
  };

  /// Ensure an entry exists; returns true when the peer was new.
  bool touch(const PeerId& peer, SimTime now);

  /// Record the announced agent-version string (identify result).
  void set_agent(const PeerId& peer, const std::string& agent, SimTime now);

  /// Replace the announced protocol set; diffs are reported to observers.
  void set_protocols(const PeerId& peer, const std::vector<std::string>& protocols,
                     SimTime now);

  void add_address(const PeerId& peer, const Multiaddr& address, SimTime now);

  [[nodiscard]] const Entry* find(const PeerId& peer) const;
  [[nodiscard]] bool supports(const PeerId& peer, std::string_view protocol) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::map<PeerId, Entry>& entries() const noexcept {
    return entries_;
  }

  void add_observer(PeerstoreObserver* observer) { observers_.push_back(observer); }

 private:
  Entry& get_or_create(const PeerId& peer, SimTime now);

  std::map<PeerId, Entry> entries_;
  std::vector<PeerstoreObserver*> observers_;
};

}  // namespace ipfs::p2p
