// Swarm: a node's live connection table.
//
// The swarm owns every open `Connection` of one node, runs the connection
// manager's trim loop on the simulation clock, and fans connection
// open/close events out to observers (the measurement recorder, the DHT,
// the identify service).  Both the message-level `net::Network` and the
// campaign-scale population driver create connections through this class,
// so instrumentation behaves identically at either fidelity (DESIGN.md §2).
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "p2p/conn_manager.hpp"
#include "p2p/connection.hpp"
#include "p2p/multiaddr.hpp"
#include "p2p/peer_id.hpp"
#include "p2p/peerstore.hpp"
#include "sim/simulation.hpp"

namespace ipfs::p2p {

/// Receives connection lifecycle events from a swarm.
class SwarmObserver {
 public:
  virtual ~SwarmObserver() = default;
  virtual void on_connection_opened(const Connection& connection) = 0;
  /// `connection.closed`/`reason` are set when this fires.
  virtual void on_connection_closed(const Connection& connection) = 0;
};

/// Connection table + trim loop of one node.
class Swarm {
 public:
  struct Config {
    ConnManagerConfig conn_manager;
    /// DHT clients and some special nodes never trim (hydra heads rely on
    /// the shared belly and keep whatever connects).
    bool trim_enabled = true;
  };

  Swarm(sim::Simulation& simulation, PeerId local_id, Multiaddr listen_address,
        Config config);
  ~Swarm();

  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  [[nodiscard]] const PeerId& local_id() const noexcept { return local_id_; }
  [[nodiscard]] const Multiaddr& listen_address() const noexcept {
    return listen_address_;
  }

  /// Begin the background trim loop.  Idempotent.
  void start();
  /// Stop the trim loop (open connections remain).
  void stop();

  /// Record a new connection; fires observers.  Returns the connection id.
  ConnectionId open_connection(const PeerId& remote, const Multiaddr& remote_address,
                               Direction direction);

  /// Close one connection with the given reason; fires observers.
  /// Returns false when the id is unknown or already closed.
  bool close_connection(ConnectionId id, CloseReason reason);

  /// Close every open connection to `remote`; returns how many closed.
  std::size_t close_peer(const PeerId& remote, CloseReason reason);

  /// Close everything (measurement end).
  void close_all(CloseReason reason);

  [[nodiscard]] const Connection* find(ConnectionId id) const;
  [[nodiscard]] bool connected_to(const PeerId& remote) const;
  [[nodiscard]] std::size_t open_count() const noexcept { return open_.size(); }
  [[nodiscard]] std::size_t opened_total() const noexcept { return opened_total_; }

  /// Snapshot of open connections (pointers valid until the next mutation).
  [[nodiscard]] std::vector<const Connection*> open_connections() const;

  [[nodiscard]] Peerstore& peerstore() noexcept { return peerstore_; }
  [[nodiscard]] const Peerstore& peerstore() const noexcept { return peerstore_; }
  [[nodiscard]] ConnManager& conn_manager() noexcept { return conn_manager_; }
  [[nodiscard]] sim::Simulation& simulation() noexcept { return simulation_; }

  void add_observer(SwarmObserver* observer) { observers_.push_back(observer); }
  void remove_observer(SwarmObserver* observer);

  /// Run one trim pass now (also runs periodically once started).  Returns
  /// the number of connections trimmed.
  std::size_t trim_now();

 private:
  void notify_closed(const Connection& connection);

  sim::Simulation& simulation_;
  PeerId local_id_;
  Multiaddr listen_address_;
  Config config_;
  ConnManager conn_manager_;
  Peerstore peerstore_;
  std::unordered_map<ConnectionId, Connection> open_;
  std::unordered_map<PeerId, int> open_per_peer_;
  std::vector<SwarmObserver*> observers_;
  ConnectionId next_connection_id_ = 1;
  std::size_t opened_total_ = 0;
  sim::TaskId trim_task_ = sim::kInvalidTask;
};

}  // namespace ipfs::p2p
