#include "p2p/conn_manager.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace ipfs::p2p {

int ConnManager::tag(const PeerId& peer) const {
  const auto it = tags_.find(peer);
  return it == tags_.end() ? 0 : it->second;
}

std::vector<ConnectionId> ConnManager::plan_trim(
    const std::vector<const Connection*>& open, common::SimTime now) const {
  std::vector<ConnectionId> to_close;
  if (config_.high_water <= 0) return to_close;
  if (open.size() <= static_cast<std::size_t>(config_.high_water)) return to_close;

  struct Candidate {
    const Connection* connection;
    int tag_value;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(open.size());
  for (const Connection* connection : open) {
    if (now - connection->opened < config_.grace_period) continue;
    if (protected_.contains(connection->remote)) continue;
    candidates.push_back({connection, tag(connection->remote)});
  }

  const std::size_t target = static_cast<std::size_t>(std::max(config_.low_water, 0));
  if (open.size() <= target) return to_close;
  std::size_t excess = open.size() - target;

  std::sort(candidates.begin(), candidates.end(),
            [now](const Candidate& a, const Candidate& b) {
              if (a.tag_value != b.tag_value) return a.tag_value < b.tag_value;
              // Among equal tags go-libp2p's victim order is effectively
              // arbitrary (map iteration).  A salted hash reproduces that:
              // each trim pass culls a pseudo-random subset, which gives
              // connection lifetimes their geometric tail (paper §IV-A's
              // 73 s median with a 196 s mean).
              return common::mix64(a.connection->id, static_cast<std::uint64_t>(now)) <
                     common::mix64(b.connection->id, static_cast<std::uint64_t>(now));
            });

  for (const Candidate& candidate : candidates) {
    if (excess == 0) break;
    to_close.push_back(candidate.connection->id);
    --excess;
  }
  return to_close;
}

}  // namespace ipfs::p2p
