#include "p2p/multiaddr.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

namespace ipfs::p2p {

namespace {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto end = text.find(delim, start);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

template <typename T>
bool parse_number(std::string_view text, T& out, int base = 10) {
  if (text.empty()) return false;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out, base);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    // Canonical uncompressed v6: eight 16-bit hex groups.
    const auto groups = split(text, ':');
    if (groups.size() != 8) return std::nullopt;
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      std::uint16_t group = 0;
      if (!parse_number(groups[i], group, 16)) return std::nullopt;
      if (i < 4) {
        hi = (hi << 16) | group;
      } else {
        lo = (lo << 16) | group;
      }
    }
    return v6(hi, lo);
  }
  const auto octets = split(text, '.');
  if (octets.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto octet_text : octets) {
    std::uint32_t octet = 0;
    if (!parse_number(octet_text, octet) || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return v4(value);
}

std::string IpAddress::to_string() const {
  char buffer[64];
  if (!is_v6_) {
    const auto v = static_cast<std::uint32_t>(lo_);
    std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", (v >> 24) & 0xff,
                  (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%x:%x:%x:%x:%x:%x:%x:%x",
                  static_cast<unsigned>((hi_ >> 48) & 0xffff),
                  static_cast<unsigned>((hi_ >> 32) & 0xffff),
                  static_cast<unsigned>((hi_ >> 16) & 0xffff),
                  static_cast<unsigned>(hi_ & 0xffff),
                  static_cast<unsigned>((lo_ >> 48) & 0xffff),
                  static_cast<unsigned>((lo_ >> 32) & 0xffff),
                  static_cast<unsigned>((lo_ >> 16) & 0xffff),
                  static_cast<unsigned>(lo_ & 0xffff));
  }
  return buffer;
}

std::string_view to_string(Transport transport) noexcept {
  switch (transport) {
    case Transport::kTcp: return "tcp";
    case Transport::kQuic: return "quic";
    case Transport::kWebsocket: return "ws";
  }
  return "?";
}

std::string Multiaddr::to_string() const {
  std::string out = ip.is_v6() ? "/ip6/" : "/ip4/";
  out += ip.to_string();
  switch (transport) {
    case Transport::kTcp:
      out += "/tcp/" + std::to_string(port);
      break;
    case Transport::kQuic:
      out += "/udp/" + std::to_string(port) + "/quic";
      break;
    case Transport::kWebsocket:
      out += "/tcp/" + std::to_string(port) + "/ws";
      break;
  }
  return out;
}

std::optional<Multiaddr> Multiaddr::parse(std::string_view text) {
  auto parts = split(text, '/');
  // Leading '/' produces an empty first element.
  if (parts.size() < 5 || !parts[0].empty()) return std::nullopt;
  if (parts[1] != "ip4" && parts[1] != "ip6") return std::nullopt;
  Multiaddr addr;
  const auto ip = IpAddress::parse(parts[2]);
  if (!ip) return std::nullopt;
  addr.ip = *ip;
  if (!parse_number(parts[4], addr.port)) return std::nullopt;
  if (parts[3] == "tcp") {
    addr.transport =
        (parts.size() >= 6 && parts[5] == "ws") ? Transport::kWebsocket : Transport::kTcp;
  } else if (parts[3] == "udp") {
    if (parts.size() < 6 || parts[5] != "quic") return std::nullopt;
    addr.transport = Transport::kQuic;
  } else {
    return std::nullopt;
  }
  return addr;
}

}  // namespace ipfs::p2p
