// Connection records.
//
// The unit of observation in the paper's churn analysis is a *connection*
// (identified by a connection-id), not a peer: one PID may contribute many
// connections over a measurement period (Table II "All" vs "Peer").
#pragma once

#include <cstdint>
#include <string_view>

#include "common/sim_time.hpp"
#include "p2p/multiaddr.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::p2p {

using common::SimDuration;
using common::SimTime;

/// Who initiated the connection, from the local node's perspective.
enum class Direction : std::uint8_t { kInbound, kOutbound };

/// Why a connection ended.  `kMeasurementEnd` matches the paper's rule that
/// connections still open at the end of a period count as closed then.
enum class CloseReason : std::uint8_t {
  kNone,            ///< still open
  kLocalTrim,       ///< our connection manager trimmed it
  kRemoteTrim,      ///< the remote's connection manager trimmed it
  kRemoteClose,     ///< remote closed deliberately (e.g. query finished)
  kLocalClose,      ///< we closed deliberately
  kPeerOffline,     ///< remote session ended / node left the network
  kError,           ///< transport failure
  kMeasurementEnd,  ///< run ended while the connection was open
};

[[nodiscard]] std::string_view to_string(Direction direction) noexcept;
[[nodiscard]] std::string_view to_string(CloseReason reason) noexcept;

using ConnectionId = std::uint64_t;

/// State of one connection as tracked by a `Swarm`.
struct Connection {
  ConnectionId id = 0;
  PeerId remote;
  Multiaddr remote_addr;
  Direction direction = Direction::kInbound;
  SimTime opened = 0;
  SimTime closed = -1;  ///< -1 while open
  CloseReason reason = CloseReason::kNone;

  [[nodiscard]] bool is_open() const noexcept { return closed < 0; }

  /// Lifetime of the connection; for open connections, the span up to `now`.
  [[nodiscard]] SimDuration duration_at(SimTime now) const noexcept {
    return (is_open() ? now : closed) - opened;
  }
};

}  // namespace ipfs::p2p
