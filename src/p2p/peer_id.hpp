// libp2p peer identities.
//
// In libp2p a PeerId is the multihash of the node's public key; peers that
// rotate their keypair get a fresh PID, which is the root cause of the
// PID-vs-peer ambiguity the paper studies (§V).  We model the identity as an
// opaque 256-bit value derived from a key seed; Kademlia XOR distance
// operates directly on these bits (as go-ipfs hashes PIDs into the keyspace).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ipfs::common {
class Rng;
}

namespace ipfs::p2p {

/// A 256-bit peer identity.
class PeerId {
 public:
  static constexpr std::size_t kBits = 256;
  static constexpr std::size_t kWords = 4;

  constexpr PeerId() = default;

  /// Deterministically derive an identity from a key seed (stand-in for
  /// "generate a 2048-bit RSA key and hash it", §III-A).
  [[nodiscard]] static PeerId from_seed(std::uint64_t key_seed) noexcept;

  /// Fresh identity from the given generator.
  [[nodiscard]] static PeerId random(common::Rng& rng) noexcept;

  /// Identity whose most significant bits match `prefix_bits` bits of
  /// `prefix`; hydra-booster places head PIDs this way to spread heads
  /// across the keyspace (§III-B).
  [[nodiscard]] static PeerId with_prefix(std::uint64_t prefix, unsigned prefix_bits,
                                          common::Rng& rng) noexcept;

  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  /// Bit i, counting from the most significant bit (bit 0 = MSB), as
  /// Kademlia bucket indexing does.
  [[nodiscard]] constexpr bool bit(std::size_t i) const noexcept {
    return ((words_[i / 64] >> (63 - (i % 64))) & 1ULL) != 0;
  }

  /// XOR of two identities (the Kademlia metric's raw form).
  [[nodiscard]] constexpr PeerId operator^(const PeerId& other) const noexcept {
    PeerId out;
    for (std::size_t i = 0; i < kWords; ++i) out.words_[i] = words_[i] ^ other.words_[i];
    return out;
  }

  /// Index of the highest set bit from the MSB, i.e. length of the common
  /// prefix with zero; 256 when the value is zero.
  [[nodiscard]] std::size_t leading_zero_bits() const noexcept;

  [[nodiscard]] constexpr auto operator<=>(const PeerId&) const noexcept = default;

  /// Short printable form, e.g. "12D3KooWAb3Cd..." — a stable textual alias
  /// derived from the id bits (not a real base58 multihash, but unique).
  [[nodiscard]] std::string to_string() const;

  /// First 64 bits; used for hashing and as a stable display prefix.
  [[nodiscard]] constexpr std::uint64_t prefix64() const noexcept { return words_[0]; }

  [[nodiscard]] constexpr const std::array<std::uint64_t, kWords>& words()
      const noexcept {
    return words_;
  }

 private:
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace ipfs::p2p

template <>
struct std::hash<ipfs::p2p::PeerId> {
  std::size_t operator()(const ipfs::p2p::PeerId& id) const noexcept {
    return static_cast<std::size_t>(id.prefix64());
  }
};
