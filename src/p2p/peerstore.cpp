#include "p2p/peerstore.hpp"

#include <algorithm>

#include "p2p/protocols.hpp"

namespace ipfs::p2p {

Peerstore::Entry& Peerstore::get_or_create(const PeerId& peer, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(peer);
  if (inserted) {
    it->second.first_seen = now;
    it->second.last_seen = now;
    for (PeerstoreObserver* observer : observers_) observer->on_peer_added(peer, now);
  }
  return it->second;
}

bool Peerstore::touch(const PeerId& peer, SimTime now) {
  const std::size_t before = entries_.size();
  Entry& entry = get_or_create(peer, now);
  entry.last_seen = std::max(entry.last_seen, now);
  return entries_.size() != before;
}

void Peerstore::set_agent(const PeerId& peer, const std::string& agent, SimTime now) {
  Entry& entry = get_or_create(peer, now);
  entry.last_seen = std::max(entry.last_seen, now);
  if (entry.agent == agent) return;
  const std::string previous = entry.agent;
  entry.agent = agent;
  for (PeerstoreObserver* observer : observers_) {
    observer->on_agent_changed(peer, previous, agent, now);
  }
}

void Peerstore::set_protocols(const PeerId& peer,
                              const std::vector<std::string>& protocol_list,
                              SimTime now) {
  Entry& entry = get_or_create(peer, now);
  entry.last_seen = std::max(entry.last_seen, now);
  std::set<std::string> next(protocol_list.begin(), protocol_list.end());
  if (next == entry.protocols) return;
  std::vector<std::string> added;
  std::vector<std::string> removed;
  std::set_difference(next.begin(), next.end(), entry.protocols.begin(),
                      entry.protocols.end(), std::back_inserter(added));
  std::set_difference(entry.protocols.begin(), entry.protocols.end(), next.begin(),
                      next.end(), std::back_inserter(removed));
  entry.protocols = std::move(next);
  if (entry.protocols.contains(std::string(protocols::kKad))) {
    entry.ever_dht_server = true;
  }
  for (PeerstoreObserver* observer : observers_) {
    observer->on_protocols_changed(peer, added, removed, now);
  }
}

void Peerstore::add_address(const PeerId& peer, const Multiaddr& address, SimTime now) {
  Entry& entry = get_or_create(peer, now);
  entry.last_seen = std::max(entry.last_seen, now);
  if (entry.addresses.insert(address).second) {
    for (PeerstoreObserver* observer : observers_) {
      observer->on_address_added(peer, address, now);
    }
  }
}

const Peerstore::Entry* Peerstore::find(const PeerId& peer) const {
  const auto it = entries_.find(peer);
  return it == entries_.end() ? nullptr : &it->second;
}

bool Peerstore::supports(const PeerId& peer, std::string_view protocol) const {
  const Entry* entry = find(peer);
  if (entry == nullptr) return false;
  return entry->protocols.contains(std::string(protocol));
}

}  // namespace ipfs::p2p
