#include "p2p/connection.hpp"

namespace ipfs::p2p {

std::string_view to_string(Direction direction) noexcept {
  return direction == Direction::kInbound ? "inbound" : "outbound";
}

std::string_view to_string(CloseReason reason) noexcept {
  switch (reason) {
    case CloseReason::kNone: return "none";
    case CloseReason::kLocalTrim: return "local-trim";
    case CloseReason::kRemoteTrim: return "remote-trim";
    case CloseReason::kRemoteClose: return "remote-close";
    case CloseReason::kLocalClose: return "local-close";
    case CloseReason::kPeerOffline: return "peer-offline";
    case CloseReason::kError: return "error";
    case CloseReason::kMeasurementEnd: return "measurement-end";
  }
  return "?";
}

}  // namespace ipfs::p2p
