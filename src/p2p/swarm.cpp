#include "p2p/swarm.hpp"

#include <algorithm>

namespace ipfs::p2p {

Swarm::Swarm(sim::Simulation& simulation, PeerId local_id, Multiaddr listen_address,
             Config config)
    : simulation_(simulation),
      local_id_(local_id),
      listen_address_(listen_address),
      config_(config),
      conn_manager_(config.conn_manager) {}

Swarm::~Swarm() { stop(); }

void Swarm::start() {
  if (!config_.trim_enabled || trim_task_ != sim::kInvalidTask) return;
  trim_task_ = simulation_.schedule_every(conn_manager_.config().check_interval,
                                          [this] { trim_now(); });
}

void Swarm::stop() {
  if (trim_task_ != sim::kInvalidTask) {
    simulation_.cancel(trim_task_);
    trim_task_ = sim::kInvalidTask;
  }
}

ConnectionId Swarm::open_connection(const PeerId& remote,
                                    const Multiaddr& remote_address,
                                    Direction direction) {
  Connection connection;
  connection.id = next_connection_id_++;
  connection.remote = remote;
  connection.remote_addr = remote_address;
  connection.direction = direction;
  connection.opened = simulation_.now();
  const ConnectionId id = connection.id;

  peerstore_.touch(remote, connection.opened);
  peerstore_.add_address(remote, remote_address, connection.opened);

  const auto [it, _] = open_.emplace(id, std::move(connection));
  ++open_per_peer_[remote];
  ++opened_total_;
  for (SwarmObserver* observer : observers_) observer->on_connection_opened(it->second);

  // An immediate trim keeps the table under HighWater even between ticks,
  // matching go-libp2p's trim-on-connect watermark check.
  if (config_.trim_enabled &&
      open_.size() > static_cast<std::size_t>(conn_manager_.config().high_water)) {
    trim_now();
  }
  return id;
}

bool Swarm::close_connection(ConnectionId id, CloseReason reason) {
  const auto it = open_.find(id);
  if (it == open_.end()) return false;
  Connection connection = std::move(it->second);
  open_.erase(it);
  connection.closed = simulation_.now();
  connection.reason = reason;
  const auto peer_it = open_per_peer_.find(connection.remote);
  if (peer_it != open_per_peer_.end() && --peer_it->second <= 0) {
    open_per_peer_.erase(peer_it);
  }
  notify_closed(connection);
  return true;
}

std::size_t Swarm::close_peer(const PeerId& remote, CloseReason reason) {
  std::vector<ConnectionId> ids;
  for (const auto& [id, connection] : open_) {
    if (connection.remote == remote) ids.push_back(id);
  }
  for (const ConnectionId id : ids) close_connection(id, reason);
  return ids.size();
}

void Swarm::close_all(CloseReason reason) {
  std::vector<ConnectionId> ids;
  ids.reserve(open_.size());
  for (const auto& [id, _] : open_) ids.push_back(id);
  for (const ConnectionId id : ids) close_connection(id, reason);
}

const Connection* Swarm::find(ConnectionId id) const {
  const auto it = open_.find(id);
  return it == open_.end() ? nullptr : &it->second;
}

bool Swarm::connected_to(const PeerId& remote) const {
  return open_per_peer_.contains(remote);
}

std::vector<const Connection*> Swarm::open_connections() const {
  std::vector<const Connection*> connections;
  connections.reserve(open_.size());
  for (const auto& [_, connection] : open_) connections.push_back(&connection);
  return connections;
}

void Swarm::remove_observer(SwarmObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

std::size_t Swarm::trim_now() {
  if (!config_.trim_enabled) return 0;
  const auto plan = conn_manager_.plan_trim(open_connections(), simulation_.now());
  for (const ConnectionId id : plan) close_connection(id, CloseReason::kLocalTrim);
  return plan.size();
}

void Swarm::notify_closed(const Connection& connection) {
  for (SwarmObserver* observer : observers_) observer->on_connection_closed(connection);
}

}  // namespace ipfs::p2p
