// Multiaddresses.
//
// The paper's §V-A groups PIDs by the IP part of the connected multiaddress
// to estimate the network size, so the IP component is a first-class value
// here.  We support the address shapes the study observes: /ip4 and /ip6
// with tcp, quic (udp) and websocket transports.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ipfs::p2p {

/// An IPv4 or IPv6 address value.
class IpAddress {
 public:
  constexpr IpAddress() = default;

  [[nodiscard]] static constexpr IpAddress v4(std::uint32_t be_value) noexcept {
    IpAddress ip;
    ip.is_v6_ = false;
    ip.lo_ = be_value;
    return ip;
  }

  [[nodiscard]] static constexpr IpAddress v6(std::uint64_t hi, std::uint64_t lo) noexcept {
    IpAddress ip;
    ip.is_v6_ = true;
    ip.hi_ = hi;
    ip.lo_ = lo;
    return ip;
  }

  /// Parse dotted-quad IPv4 ("10.0.3.7"); IPv6 accepts the canonical
  /// lower-case hex form without '::' compression (as this library prints).
  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);

  [[nodiscard]] constexpr bool is_v6() const noexcept { return is_v6_; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr auto operator<=>(const IpAddress&) const noexcept = default;

  [[nodiscard]] constexpr std::uint64_t hash_value() const noexcept {
    return (hi_ * 0x9e3779b97f4a7c15ULL) ^ lo_ ^ (is_v6_ ? 0x5851f42d4c957f2dULL : 0);
  }

 private:
  bool is_v6_ = false;
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;  ///< for v4, the 32-bit address in the low word
};

/// Transport part of a multiaddress.
enum class Transport : std::uint8_t { kTcp, kQuic, kWebsocket };

[[nodiscard]] std::string_view to_string(Transport transport) noexcept;

/// A simplified multiaddress: IP + transport + port, e.g.
/// "/ip4/147.28.0.5/tcp/4001" or "/ip4/10.0.0.1/udp/4001/quic".
struct Multiaddr {
  IpAddress ip;
  Transport transport = Transport::kTcp;
  std::uint16_t port = 4001;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Multiaddr> parse(std::string_view text);

  [[nodiscard]] constexpr auto operator<=>(const Multiaddr&) const noexcept = default;
};

}  // namespace ipfs::p2p

template <>
struct std::hash<ipfs::p2p::IpAddress> {
  std::size_t operator()(const ipfs::p2p::IpAddress& ip) const noexcept {
    return static_cast<std::size_t>(ip.hash_value());
  }
};

template <>
struct std::hash<ipfs::p2p::Multiaddr> {
  std::size_t operator()(const ipfs::p2p::Multiaddr& addr) const noexcept {
    return static_cast<std::size_t>(addr.ip.hash_value() ^
                                    (static_cast<std::uint64_t>(addr.port) << 17) ^
                                    static_cast<std::uint64_t>(addr.transport));
  }
};
