// Well-known libp2p/IPFS protocol identifiers observed by the paper
// (Fig. 4) plus helpers for the role semantics attached to them.
#pragma once

#include <string_view>

namespace ipfs::p2p::protocols {

inline constexpr std::string_view kIdentify = "/ipfs/id/1.0.0";
inline constexpr std::string_view kIdentifyPush = "/ipfs/id/push/1.0.0";
inline constexpr std::string_view kPing = "/ipfs/ping/1.0.0";
inline constexpr std::string_view kKad = "/ipfs/kad/1.0.0";
inline constexpr std::string_view kLanKad = "/ipfs/lan/kad/1.0.0";
inline constexpr std::string_view kBitswap = "/ipfs/bitswap";
inline constexpr std::string_view kBitswap100 = "/ipfs/bitswap/1.0.0";
inline constexpr std::string_view kBitswap110 = "/ipfs/bitswap/1.1.0";
inline constexpr std::string_view kBitswap120 = "/ipfs/bitswap/1.2.0";
inline constexpr std::string_view kAutonat = "/libp2p/autonat/1.0.0";
inline constexpr std::string_view kRelayV1 = "/libp2p/circuit/relay/0.1.0";
inline constexpr std::string_view kRelayV2Stop = "/libp2p/circuit/relay/0.2.0/stop";
inline constexpr std::string_view kFetch = "/libp2p/fetch/0.0.1";
inline constexpr std::string_view kFloodsub = "/floodsub/1.0.0";
inline constexpr std::string_view kMeshsub10 = "/meshsub/1.0.0";
inline constexpr std::string_view kMeshsub11 = "/meshsub/1.1.0";
inline constexpr std::string_view kDelta = "/p2p/id/delta/1.0.0";
// Protocols the paper flags as curiosities (§IV-B): the storm botnet's
// private protocols and the "ioi" agent's custom ones.
inline constexpr std::string_view kSbptp = "/sbptp/1.0.0";
inline constexpr std::string_view kSfst1 = "/sfst/1.0.0";
inline constexpr std::string_view kSfst2 = "/sfst/2.0.0";
inline constexpr std::string_view kIoiDial = "/ioi/dial/1.0.0";
inline constexpr std::string_view kIoiPortssub = "/ioi/portssub/1.0.0";
inline constexpr std::string_view kX = "/x/";

/// True when supporting `protocol` marks a peer as a DHT server; the paper
/// identifies DHT servers by their /ipfs/kad/1.0.0 announcement (§IV-B).
[[nodiscard]] constexpr bool marks_dht_server(std::string_view protocol) noexcept {
  return protocol == kKad;
}

/// True for any /ipfs/bitswap variant.
[[nodiscard]] constexpr bool is_bitswap(std::string_view protocol) noexcept {
  return protocol.substr(0, kBitswap.size()) == kBitswap;
}

}  // namespace ipfs::p2p::protocols
