// Parallel multi-trial campaign runner (DESIGN.md §7).
//
// A measurement campaign is rarely one run: parameter sweeps and seed
// sweeps execute many *independent* (seed, config) cells.  The sequential
// `scenario::CampaignEngine` is single-threaded by design (one virtual
// clock), but distinct engines share no mutable state, so independent
// cells can run on as many cores as the hardware offers.
//
// `ParallelTrialRunner` executes each trial on a worker thread with its
// own `CampaignEngine` (own Simulation, own RNG tree) publishing into a
// per-trial `measure::ReplaySink`.  Once every trial has finished, the
// buffered streams are replayed into the caller's sink in *trial order* —
// the merged output is bit-identical to a sequential
// `for (trial : trials) engine.run(sink)` loop, regardless of worker
// count or completion order.  See DESIGN.md §7 for the determinism
// contract.
#pragma once

#include <cstdint>
#include <expected>
#include <span>
#include <string>
#include <vector>

#include "measure/sink.hpp"
#include "scenario/campaign.hpp"

namespace ipfs::runtime {

/// One campaign cell of a sweep.
struct TrialSpec {
  /// Label carried into outputs and error messages ("P4 seed=3", …).
  std::string name;
  scenario::CampaignConfig config;
};

/// Outcome of one trial in the collecting (monolithic) API.
struct TrialResult {
  std::string name;
  std::uint64_t seed = 0;
  scenario::CampaignResult result;
};

/// Thread-pool runner for independent campaign trials.
class ParallelTrialRunner {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    /// Always clamped to [1, trial count].
    unsigned workers = 0;
  };

  ParallelTrialRunner() = default;
  explicit ParallelTrialRunner(Options options) : options_(options) {}

  /// Seed-sweep helper: one trial per seed, all other knobs from `base`.
  [[nodiscard]] static std::vector<TrialSpec> seed_sweep(
      scenario::CampaignConfig base, std::span<const std::uint64_t> seeds);

  /// Validate every spec upfront.  Returns the first offending trial's
  /// name and reason, or nullopt when all are runnable.  `run` refuses a
  /// batch containing any invalid cell so a sweep never partially runs.
  [[nodiscard]] static std::optional<std::string> validate(
      const std::vector<TrialSpec>& trials);

  /// Run all trials concurrently, then replay each trial's full event
  /// stream into `sink` in trial order (bit-identical to the sequential
  /// loop).  Returns the validation error when any spec is invalid, in
  /// which case nothing runs.
  std::expected<void, std::string> run(std::vector<TrialSpec> trials,
                                       measure::MeasurementSink& sink);

  /// Collecting variant: monolithic per-trial results, in trial order.
  [[nodiscard]] std::expected<std::vector<TrialResult>, std::string> run(
      std::vector<TrialSpec> trials);

  /// The worker count `run` requests for `trial_count` trials.  Auto
  /// counts (options.workers == 0) are additionally leased from the
  /// process-wide `runtime::WorkerBudget` at run time, so nested sharded
  /// engines (scenario::ShardPlan) and concurrent sweeps never commit
  /// more than hardware concurrency between them; explicit counts are
  /// honoured as given (DESIGN.md §13).
  [[nodiscard]] unsigned resolve_workers(std::size_t trial_count) const noexcept;

 private:
  Options options_{};
};

}  // namespace ipfs::runtime
