#include "runtime/parallel.hpp"

#include <atomic>
#include <exception>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runtime/worker_budget.hpp"

namespace ipfs::runtime {

namespace {

/// Run `work(i)` for every i in [0, task_count) across `workers` threads.
/// Tasks are claimed from an atomic counter, so completion order is
/// nondeterministic — callers must only depend on per-task results, which
/// is exactly why trials buffer into per-trial sinks.  The first exception
/// thrown by any task is rethrown on the calling thread after all workers
/// have joined.
void run_pool(std::size_t task_count, unsigned workers,
              const std::function<void(std::size_t)>& work) {
  if (task_count == 0) return;
  if (workers <= 1) {
    for (std::size_t i = 0; i < task_count; ++i) work(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(task_count);
  auto worker_loop = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= task_count) return;
      try {
        work(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
  for (std::thread& thread : pool) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// The worker count a runner's options yield for `trial_count` trials,
/// with auto (0) counts additionally leased from the process-wide
/// `WorkerBudget` so concurrent sweeps and nested sharded engines share
/// one hardware budget (DESIGN.md §13).  Explicit counts are honoured as
/// given — callers asking for N workers get N.  The lease rides in
/// `lease` and frees on scope exit.
unsigned budgeted_workers(unsigned requested, bool automatic,
                          WorkerLease& lease) {
  if (!automatic) return requested;
  lease = WorkerBudget::process().lease(requested);
  return lease.granted();
}

/// Build the engine for one already-validated trial.  validate() ran
/// upfront, so create() cannot fail today; the throw guards against the
/// two ever diverging (run_pool rethrows it on the calling thread).
scenario::CampaignEngine make_engine(const TrialSpec& trial) {
  auto engine = scenario::CampaignEngine::create(trial.config);
  if (!engine) {
    throw std::runtime_error("trial '" + trial.name + "': " + engine.error());
  }
  return std::move(*engine);
}

}  // namespace

std::vector<TrialSpec> ParallelTrialRunner::seed_sweep(
    scenario::CampaignConfig base, std::span<const std::uint64_t> seeds) {
  std::vector<TrialSpec> trials;
  trials.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    TrialSpec trial;
    trial.name = base.period.name + " seed=" + std::to_string(seed);
    trial.config = base;
    trial.config.seed = seed;
    trials.push_back(std::move(trial));
  }
  return trials;
}

std::optional<std::string> ParallelTrialRunner::validate(
    const std::vector<TrialSpec>& trials) {
  for (const TrialSpec& trial : trials) {
    if (auto error = scenario::CampaignEngine::validate(trial.config)) {
      return "trial '" + trial.name + "': " + *error;
    }
  }
  return std::nullopt;
}

unsigned ParallelTrialRunner::resolve_workers(std::size_t trial_count) const noexcept {
  unsigned workers = options_.workers;
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;  // hardware_concurrency may be unknown
  if (trial_count < workers) workers = static_cast<unsigned>(trial_count);
  return workers == 0 ? 1 : workers;
}

std::expected<void, std::string> ParallelTrialRunner::run(
    std::vector<TrialSpec> trials, measure::MeasurementSink& sink) {
  if (auto error = validate(trials)) return std::unexpected(std::move(*error));

  // One buffering sink per trial; workers never touch the caller's sink.
  std::vector<measure::ReplaySink> buffers(trials.size());
  WorkerLease lease;
  run_pool(trials.size(),
           budgeted_workers(resolve_workers(trials.size()),
                            options_.workers == 0, lease),
           [&](std::size_t i) { make_engine(trials[i]).run(buffers[i]); });

  // Ordered merge: trial 0's complete stream, then trial 1's, … — the same
  // byte stream a sequential loop over `trials` would have produced.
  for (measure::ReplaySink& buffer : buffers) buffer.replay(sink);
  return {};
}

std::expected<std::vector<TrialResult>, std::string> ParallelTrialRunner::run(
    std::vector<TrialSpec> trials) {
  if (auto error = validate(trials)) return std::unexpected(std::move(*error));

  std::vector<TrialResult> results(trials.size());
  WorkerLease lease;
  run_pool(trials.size(),
           budgeted_workers(resolve_workers(trials.size()),
                            options_.workers == 0, lease),
           [&](std::size_t i) {
             scenario::CampaignResultSink collector;
             make_engine(trials[i]).run(collector);
             results[i].name = trials[i].name;
             results[i].seed = trials[i].config.seed;
             results[i].result = collector.take_result();
           });
  return results;
}

}  // namespace ipfs::runtime
