// The runtime facade: the one public way to assemble and run experiments
// (DESIGN.md §3).
//
// `TestbedBuilder` owns the wiring every entry point used to repeat by
// hand — the Simulation clock, the message-level Network, the IpAllocator
// and the seed-derived RNG tree — and produces a `Testbed` that hands out
// `NodeHandle`s with auto-allocated addresses and deterministic per-node
// identities.  Population assembly is declarative and fluent:
//
//   auto testbed = runtime::TestbedBuilder().seed(42).build();
//   auto vantage = testbed.add_server(node::NodeConfig::dht_server(8, 12));
//   auto& recorder = vantage.attach_recorder();
//   testbed.add_servers(15).add_clients(10).bootstrap_all_via(vantage);
//   testbed.run_for(1 * common::kHour);
//   recorder.finish();
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crawler/crawler.hpp"
#include "dht/record_store.hpp"
#include "hydra/hydra_node.hpp"
#include "measure/recorder.hpp"
#include "measure/sink.hpp"
#include "net/ip_allocator.hpp"
#include "net/network.hpp"
#include "node/go_ipfs_node.hpp"
#include "scenario/churn.hpp"
#include "scenario/content.hpp"
#include "sim/simulation.hpp"

namespace ipfs::runtime {

class Testbed;

/// Lightweight, copyable reference to one node inside a `Testbed`; stays
/// valid as further nodes are added.
class NodeHandle {
 public:
  [[nodiscard]] node::GoIpfsNode& node() const;
  [[nodiscard]] const p2p::PeerId& id() const;
  [[nodiscard]] p2p::Swarm& swarm() const;

  /// Attach a measurement recorder to this node's swarm and start it
  /// recording immediately.  One recorder per node.
  measure::Recorder& attach_recorder(measure::RecorderConfig config = {}) const;
  [[nodiscard]] bool has_recorder() const;
  /// The attached recorder; attach_recorder must have been called.
  [[nodiscard]] measure::Recorder& recorder() const;

  /// Dial the given peers and run the boot lookups (go-ipfs boot
  /// behaviour); marks the node as bootstrapped for `bootstrap_all_via`.
  const NodeHandle& bootstrap(const std::vector<p2p::PeerId>& peers) const;

  /// Deregister from the network (node churn: remotes observe
  /// peer-offline closes).
  void stop() const;

 private:
  friend class Testbed;
  NodeHandle(Testbed& testbed, std::size_t index)
      : testbed_(&testbed), index_(index) {}

  Testbed* testbed_;
  std::size_t index_;
};

/// A fully wired experiment: clock, fabric, address space and nodes.
/// Obtained from `TestbedBuilder::build()`; not movable (nodes hold
/// references into it).
class Testbed {
 public:
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // ---- population assembly (fluent) ---------------------------------------

  /// Add one started go-ipfs node with an auto-allocated address and a
  /// deterministic per-node identity.
  NodeHandle add_node(node::NodeConfig config);
  NodeHandle add_server(node::NodeConfig config = node::NodeConfig::dht_server());
  NodeHandle add_client(node::NodeConfig config = node::NodeConfig::dht_client());

  Testbed& add_servers(int count,
                       node::NodeConfig config = node::NodeConfig::dht_server());
  Testbed& add_clients(int count,
                       node::NodeConfig config = node::NodeConfig::dht_client());

  /// Bootstrap every node that has not bootstrapped yet through `vantage`
  /// (the vantage itself is skipped).
  Testbed& bootstrap_all_via(NodeHandle vantage);

  /// Add a started multi-head hydra deployment.
  hydra::HydraNode& add_hydra(hydra::HydraConfig config = {});

  /// Add a started active crawler (nebula-style baseline).
  crawler::Crawler& add_crawler(crawler::CrawlerConfig config = {});

  /// Drive `handle` with the builder's session-churn model
  /// (`TestbedBuilder::churn`): leaves call `GoIpfsNode::stop()` — remotes
  /// observe peer-offline closes, routing-table entries go genuinely stale
  /// — and rejoins restart the node with its PeerId intact.  Draws are
  /// pure per (node index, session), so two equally seeded testbeds churn
  /// identically.  No-op when the builder declared no churn model.
  Testbed& churn(NodeHandle handle);

  /// `churn()` for every node except `vantage` (the measuring node stays
  /// up, as the paper's did).
  Testbed& churn_all_except(NodeHandle vantage);

  /// Drive `handle` with the builder's content-workload model
  /// (`TestbedBuilder::content`): the node provides its drawn keys on the
  /// publish/republish cycle — records land in `content_records()`, blocks
  /// in the node's real Bitswap store — and runs a fetch chain that looks
  /// providers up in the record store and exchanges genuine want/block
  /// messages with connected providers.  Draws are pure per (node index,
  /// slot/fetch, cycle), so equally seeded testbeds agree on every
  /// provide and fetch.  No-op when the builder declared no content model.
  Testbed& content(NodeHandle handle);

  /// `content()` for every node except `vantage`.
  Testbed& content_all_except(NodeHandle vantage);

  /// The shared provider-record store content-driven nodes publish into
  /// (the vantage's view); swept every `bucket_refresh_interval`.
  /// Requires a builder-declared content model.
  [[nodiscard]] dht::RecordStore& content_records();

  // ---- execution -----------------------------------------------------------

  Testbed& run_for(common::SimDuration duration);
  Testbed& run_until(common::SimTime limit);

  /// Finish every attached recorder and publish its dataset into `sink`
  /// (role kOther), in node-addition order.
  Testbed& publish_recorders(measure::MeasurementSink& sink);

  // ---- access --------------------------------------------------------------

  [[nodiscard]] NodeHandle node(std::size_t index);
  [[nodiscard]] std::size_t node_count() const noexcept { return entries_.size(); }

  [[nodiscard]] sim::Simulation& simulation() noexcept { return simulation_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] net::IpAllocator& ips() noexcept { return ips_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  friend class TestbedBuilder;
  friend class NodeHandle;

  Testbed(std::uint64_t seed, net::ConditionSpec conditions,
          std::optional<scenario::ChurnSpec> churn,
          std::optional<scenario::ContentSpec> content);

  struct Entry {
    std::unique_ptr<node::GoIpfsNode> node;
    std::unique_ptr<measure::Recorder> recorder;
    bool bootstrapped = false;
    bool churned = false;
    bool content = false;
    std::uint32_t content_fetches = 0;  ///< next fetch-chain index
  };

  void schedule_churn_session(std::size_t index, std::uint32_t session,
                              common::SimDuration delay);
  void schedule_content_provide(std::size_t index, std::uint32_t slot,
                                std::uint32_t cycle, common::SimDuration delay);
  void schedule_content_fetch(std::size_t index);
  void schedule_content_maintenance();

  /// Deterministic per-entity generator: depends only on the testbed seed
  /// and the entity's creation index, never on call interleaving.
  [[nodiscard]] common::Rng entity_rng(std::uint64_t label) noexcept;

  std::uint64_t seed_;
  sim::Simulation simulation_;
  net::Network network_;
  net::IpAllocator ips_;
  std::optional<scenario::ChurnModel> churn_model_;
  std::optional<scenario::ContentModel> content_model_;
  std::unique_ptr<dht::RecordStore> content_records_;
  bool content_maintenance_scheduled_ = false;
  std::uint64_t next_entity_ = 0;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<hydra::HydraNode>> hydras_;
  std::vector<std::unique_ptr<crawler::Crawler>> crawlers_;
};

/// Fluent builder over the testbed's global knobs.  `build()` performs all
/// Simulation/Network/IpAllocator/RNG-tree wiring.
class TestbedBuilder {
 public:
  /// Root of the RNG tree: every identity, address and latency sample in
  /// the testbed derives from this one seed.
  TestbedBuilder& seed(std::uint64_t value) {
    seed_ = value;
    return *this;
  }

  /// Flat latency shortcut; equivalent to `conditions({.latency = model})`.
  TestbedBuilder& latency(net::LatencyModel model) {
    conditions_.latency = model;
    return *this;
  }

  /// Full network-condition description: zones, loss, NAT classes and
  /// scheduled disturbances (net/conditions.hpp).  The model is seeded
  /// from the testbed seed, so two testbeds with equal seeds agree on
  /// every zone assignment and loss verdict.
  TestbedBuilder& conditions(net::ConditionSpec spec) {
    conditions_ = std::move(spec);
    return *this;
  }

  /// Session-churn description for nodes registered with
  /// `Testbed::churn(...)` (scenario/churn.hpp, DESIGN.md §10).  Seeded
  /// from the testbed seed like the condition model.  Testbed nodes have
  /// no population `Category`, so only the spec's top-level `session` /
  /// `gap` distributions (and `diurnal` / `initial_online`) apply here;
  /// per-category overrides take effect in campaign runs only.
  TestbedBuilder& churn(scenario::ChurnSpec spec) {
    churn_ = std::move(spec);
    return *this;
  }

  /// Content-workload description for nodes registered with
  /// `Testbed::content(...)` (scenario/content.hpp, DESIGN.md §11).
  /// Seeded from the testbed seed like the churn model.  Testbed nodes
  /// have no population `Category`, so the spec's top-level
  /// `publishes_per_peer` / `fetches_per_hour` apply; per-category
  /// overrides take effect in campaign runs only.
  TestbedBuilder& content(scenario::ContentSpec spec) {
    content_ = std::move(spec);
    return *this;
  }

  [[nodiscard]] Testbed build() const {
    return Testbed(seed_, conditions_, churn_, content_);
  }

 private:
  std::uint64_t seed_ = 20211203;
  net::ConditionSpec conditions_{};
  std::optional<scenario::ChurnSpec> churn_;
  std::optional<scenario::ContentSpec> content_;
};

}  // namespace ipfs::runtime
