#include "runtime/sharded.hpp"

#include <utility>

#include "runtime/worker_budget.hpp"

namespace ipfs::runtime {

scenario::ShardPlan ShardedCampaignRunner::resolve_plan() const noexcept {
  scenario::ShardPlan plan;
  plan.shards = options_.shards == 0 ? WorkerBudget::hardware() : options_.shards;
  plan.workers = options_.workers;
  if (options_.slab > 0) plan.slab = options_.slab;
  return plan;
}

std::optional<std::string> ShardedCampaignRunner::validate(
    const scenario::CampaignConfig& config, const Options& options) {
  if (options.slab < 0) return "sharding.slab must be positive";
  scenario::CampaignConfig sharded = config;
  sharded.sharding = ShardedCampaignRunner(options).resolve_plan();
  return scenario::CampaignEngine::validate(sharded);
}

std::expected<void, std::string> ShardedCampaignRunner::run(
    scenario::CampaignConfig config, measure::MeasurementSink& sink) const {
  config.sharding = resolve_plan();
  auto engine = scenario::CampaignEngine::create(std::move(config));
  if (!engine) return std::unexpected(std::move(engine.error()));
  engine->run(sink);
  return {};
}

std::expected<scenario::CampaignResult, std::string>
ShardedCampaignRunner::run(scenario::CampaignConfig config) const {
  scenario::CampaignResultSink collector;
  if (auto outcome = run(std::move(config), collector); !outcome) {
    return std::unexpected(std::move(outcome.error()));
  }
  return collector.take_result();
}

}  // namespace ipfs::runtime
