#include "runtime/testbed.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ipfs::runtime {

namespace {
// Fixed labels decorrelate the RNG-tree branches (DESIGN.md §5).
constexpr std::uint64_t kNetworkBranch = 0x6e21;
constexpr std::uint64_t kAddressBranch = 0x1bad;
constexpr std::uint64_t kEntityBranch = 0x1d5e;
constexpr std::uint64_t kConditionsBranch = 0x2c0d;
constexpr std::uint64_t kChurnBranch = 0xc402;
constexpr std::uint64_t kContentBranch = 0xc047;
}  // namespace

// ---- NodeHandle ------------------------------------------------------------

node::GoIpfsNode& NodeHandle::node() const {
  return *testbed_->entries_.at(index_).node;
}

const p2p::PeerId& NodeHandle::id() const { return node().id(); }

p2p::Swarm& NodeHandle::swarm() const { return node().swarm(); }

measure::Recorder& NodeHandle::attach_recorder(measure::RecorderConfig config) const {
  Testbed::Entry& entry = testbed_->entries_.at(index_);
  assert(entry.recorder == nullptr && "one recorder per node");
  entry.recorder = std::make_unique<measure::Recorder>(
      testbed_->simulation_, entry.node->swarm(), std::move(config));
  entry.recorder->start();
  return *entry.recorder;
}

bool NodeHandle::has_recorder() const {
  return testbed_->entries_.at(index_).recorder != nullptr;
}

measure::Recorder& NodeHandle::recorder() const {
  Testbed::Entry& entry = testbed_->entries_.at(index_);
  assert(entry.recorder != nullptr && "attach_recorder first");
  return *entry.recorder;
}

const NodeHandle& NodeHandle::bootstrap(const std::vector<p2p::PeerId>& peers) const {
  Testbed::Entry& entry = testbed_->entries_.at(index_);
  entry.node->bootstrap(peers);
  entry.bootstrapped = true;
  return *this;
}

void NodeHandle::stop() const { node().stop(); }

// ---- Testbed ---------------------------------------------------------------

Testbed::Testbed(std::uint64_t seed, net::ConditionSpec conditions,
                 std::optional<scenario::ChurnSpec> churn,
                 std::optional<scenario::ContentSpec> content)
    : seed_(seed),
      network_(simulation_, common::Rng(common::mix64(seed, kNetworkBranch)),
               net::ConditionModel(std::move(conditions),
                                   common::mix64(seed, kConditionsBranch))),
      ips_(common::Rng(common::mix64(seed, kAddressBranch))) {
  if (churn) {
    churn_model_.emplace(std::move(*churn), common::mix64(seed, kChurnBranch));
  }
  if (content) {
    content_model_.emplace(std::move(*content),
                           common::mix64(seed, kContentBranch));
    content_records_ = std::make_unique<dht::RecordStore>();
  }
}

common::Rng Testbed::entity_rng(std::uint64_t label) noexcept {
  return common::Rng(
      common::mix64(common::mix64(seed_, kEntityBranch), label));
}

NodeHandle Testbed::add_node(node::NodeConfig config) {
  common::Rng rng = entity_rng(next_entity_++);
  Entry entry;
  entry.node = std::make_unique<node::GoIpfsNode>(
      simulation_, network_, p2p::PeerId::random(rng),
      net::swarm_tcp_addr(ips_.unique_v4()), std::move(config));
  entry.node->start();
  entries_.push_back(std::move(entry));
  return NodeHandle(*this, entries_.size() - 1);
}

NodeHandle Testbed::add_server(node::NodeConfig config) {
  return add_node(std::move(config));
}

NodeHandle Testbed::add_client(node::NodeConfig config) {
  return add_node(std::move(config));
}

Testbed& Testbed::add_servers(int count, node::NodeConfig config) {
  for (int i = 0; i < count; ++i) add_node(config);
  return *this;
}

Testbed& Testbed::add_clients(int count, node::NodeConfig config) {
  for (int i = 0; i < count; ++i) add_node(config);
  return *this;
}

Testbed& Testbed::bootstrap_all_via(NodeHandle vantage) {
  const p2p::PeerId& via = vantage.id();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (i == vantage.index_ || entry.bootstrapped) continue;
    entry.node->bootstrap({via});
    entry.bootstrapped = true;
  }
  return *this;
}

hydra::HydraNode& Testbed::add_hydra(hydra::HydraConfig config) {
  common::Rng rng = entity_rng(next_entity_++);
  hydras_.push_back(std::make_unique<hydra::HydraNode>(
      simulation_, network_, rng, ips_.unique_v4(), std::move(config)));
  hydras_.back()->start();
  return *hydras_.back();
}

crawler::Crawler& Testbed::add_crawler(crawler::CrawlerConfig config) {
  common::Rng rng = entity_rng(next_entity_++);
  crawlers_.push_back(std::make_unique<crawler::Crawler>(
      simulation_, network_, p2p::PeerId::random(rng),
      net::swarm_tcp_addr(ips_.unique_v4()), std::move(config)));
  crawlers_.back()->start();
  return *crawlers_.back();
}

Testbed& Testbed::churn(NodeHandle handle) {
  if (!churn_model_) return *this;  // no model declared on the builder
  Entry& entry = entries_.at(handle.index_);
  if (entry.churned) return *this;
  entry.churned = true;
  const auto index = handle.index_;
  const auto node = static_cast<std::uint32_t>(index);
  if (churn_model_->initially_online(node)) {
    // The node is already started (add_node starts it); session 0 begins
    // now and the first leave lands one session length out.
    schedule_churn_session(index, 0, 0);
  } else {
    entry.node->stop();
    schedule_churn_session(
        index, 0,
        std::max<common::SimDuration>(
            churn_model_->gap_length(node, 0, simulation_.now()),
            common::kSecond));
  }
  return *this;
}

Testbed& Testbed::churn_all_except(NodeHandle vantage) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != vantage.index_) churn(NodeHandle(*this, i));
  }
  return *this;
}

Testbed& Testbed::content(NodeHandle handle) {
  if (!content_model_) return *this;  // no model declared on the builder
  Entry& entry = entries_.at(handle.index_);
  if (entry.content) return *this;
  entry.content = true;
  schedule_content_maintenance();
  const auto node = static_cast<std::uint32_t>(handle.index_);
  // Testbed nodes carry no population Category; the kNormalUser slot
  // resolves to the spec's top-level rates unless explicitly overridden.
  const std::uint32_t count =
      content_model_->publish_count(node, scenario::Category::kNormalUser);
  for (std::uint32_t slot = 0; slot < count; ++slot) {
    schedule_content_provide(handle.index_, slot, 0,
                             content_model_->initial_publish_delay(node, slot));
  }
  schedule_content_fetch(handle.index_);
  return *this;
}

Testbed& Testbed::content_all_except(NodeHandle vantage) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != vantage.index_) content(NodeHandle(*this, i));
  }
  return *this;
}

dht::RecordStore& Testbed::content_records() {
  assert(content_records_ != nullptr && "declare a content model on the builder");
  return *content_records_;
}

void Testbed::schedule_content_provide(std::size_t index, std::uint32_t slot,
                                       std::uint32_t cycle,
                                       common::SimDuration delay) {
  // Provide, then chain the next republish cycle with its drawn jitter —
  // every key, time and cycle is a pure function of (node index, slot,
  // cycle, testbed seed), as in the campaign engine (DESIGN.md §5/§11).
  simulation_.schedule_after(delay, [this, index, slot, cycle] {
    const auto node = static_cast<std::uint32_t>(index);
    const scenario::ContentSpec& spec = content_model_->spec();
    const std::uint32_t key = content_model_->key_for(node, slot, spec.keys);
    const p2p::PeerId cid = content_model_->key_cid(key);
    content_records_->put(cid, entries_[index].node->id(), simulation_.now(),
                          spec.provider_ttl);
    entries_[index].node->bitswap().add_block(cid);
    schedule_content_provide(
        index, slot, cycle + 1,
        spec.republish_interval +
            content_model_->republish_jitter(node, slot, cycle + 1));
  });
}

void Testbed::schedule_content_fetch(std::size_t index) {
  if (content_model_->fetch_rate(scenario::Category::kNormalUser) <= 0.0) return;
  const auto node = static_cast<std::uint32_t>(index);
  const std::uint32_t fetch = entries_[index].content_fetches++;
  const auto gap = std::max<common::SimDuration>(
      content_model_->fetch_gap(node, fetch, scenario::Category::kNormalUser),
      common::kSecond);
  simulation_.schedule_after(gap, [this, index, fetch] {
    const auto node = static_cast<std::uint32_t>(index);
    const std::uint32_t key =
        content_model_->fetch_key(node, fetch, content_model_->spec().keys);
    const p2p::PeerId cid = content_model_->key_cid(key);
    node::GoIpfsNode& fetcher = *entries_[index].node;
    // A live provider we are already connected to serves the block over a
    // genuine Bitswap want/block exchange; otherwise the fetch fizzles
    // (testbed fetchers do not dial — campaigns model that path).
    for (const p2p::PeerId& provider :
         content_records_->get(cid, simulation_.now())) {
      if (provider == fetcher.id()) continue;
      if (network_.connected(fetcher.id(), provider)) {
        fetcher.bitswap().want_block(provider, cid, nullptr);
        break;
      }
    }
    schedule_content_fetch(index);
  });
}

void Testbed::schedule_content_maintenance() {
  if (content_maintenance_scheduled_) return;
  content_maintenance_scheduled_ = true;
  simulation_.schedule_every(content_model_->spec().bucket_refresh_interval,
                             [this] { content_records_->sweep(simulation_.now()); });
}

void Testbed::schedule_churn_session(std::size_t index, std::uint32_t session,
                                     common::SimDuration delay) {
  // Join (unless already up for session 0), stay one drawn session length,
  // leave, and come back after a drawn gap.  Every length is a pure
  // function of (node index, session, testbed seed) — DESIGN.md §5/§10.
  simulation_.schedule_after(delay, [this, index, session] {
    node::GoIpfsNode& node = *entries_[index].node;
    node.start();  // no-op when already started (session 0, initially online)
    const auto node_id = static_cast<std::uint32_t>(index);
    const auto length = std::max<common::SimDuration>(
        churn_model_->session_length(node_id, session), common::kSecond);
    simulation_.schedule_after(length, [this, index, session] {
      node::GoIpfsNode& node = *entries_[index].node;
      node.stop();  // remotes observe kPeerOffline; entries go stale
      const auto node_id = static_cast<std::uint32_t>(index);
      const auto gap = std::max<common::SimDuration>(
          churn_model_->gap_length(node_id, session + 1, simulation_.now()),
          common::kSecond);
      schedule_churn_session(index, session + 1, gap);
    });
  });
}

Testbed& Testbed::run_for(common::SimDuration duration) {
  simulation_.run_until(simulation_.now() + duration);
  return *this;
}

Testbed& Testbed::run_until(common::SimTime limit) {
  simulation_.run_until(limit);
  return *this;
}

Testbed& Testbed::publish_recorders(measure::MeasurementSink& sink) {
  for (Entry& entry : entries_) {
    if (entry.recorder != nullptr) {
      entry.recorder->publish(sink, measure::DatasetRole::kOther);
    }
  }
  return *this;
}

NodeHandle Testbed::node(std::size_t index) {
  assert(index < entries_.size());
  return NodeHandle(*this, index);
}

}  // namespace ipfs::runtime
