// Intra-trial sharded campaign runner (DESIGN.md §13).
//
// `ParallelTrialRunner` parallelizes *across* trials; this facade
// parallelizes *inside* one: it resolves a `scenario::ShardPlan` —
// shard count, worker budget, slab length — injects it into the config
// and runs the engine, whose pure whole-population work then fans out
// across a fork-join `ShardPool`.  The export is byte-identical to the
// unsharded engine at any shard count and any worker count (the
// sequential engine is the oracle; `ctest -L shard` enforces it), so
// sharding is purely an execution knob.
//
// Worker budgeting: an auto plan (workers == 0) resolves through the
// process-wide `WorkerBudget` that `ParallelTrialRunner` shares, so a
// sweep of sharded trials commits trials x shards workers never
// exceeding hardware concurrency.
#pragma once

#include <expected>
#include <optional>
#include <string>

#include "measure/sink.hpp"
#include "scenario/campaign.hpp"

namespace ipfs::runtime {

class ShardedCampaignRunner {
 public:
  struct Options {
    /// Population shards; 0 resolves to `WorkerBudget::hardware()` (one
    /// slice per core the machine could give us).
    unsigned shards = 0;
    /// Worker threads; 0 leases from the process `WorkerBudget` at
    /// engine construction, explicit values are honoured as given.
    unsigned workers = 0;
    /// Precompute slab; 0 keeps the `ShardPlan` default (6 h).
    common::SimDuration slab = 0;
  };

  ShardedCampaignRunner() = default;
  explicit ShardedCampaignRunner(Options options) : options_(options) {}

  /// Why (`config`, `options`) cannot run, or nullopt when valid.
  [[nodiscard]] static std::optional<std::string> validate(
      const scenario::CampaignConfig& config, const Options& options);

  /// The plan `run` would inject: shard/slab defaults resolved, worker
  /// request passed through (the budget lease happens inside the engine).
  [[nodiscard]] scenario::ShardPlan resolve_plan() const noexcept;

  /// Run one sharded campaign, streaming into `sink`.  Returns the
  /// validation error when the config or plan is invalid, in which case
  /// nothing runs.
  std::expected<void, std::string> run(scenario::CampaignConfig config,
                                       measure::MeasurementSink& sink) const;

  /// Collecting variant (adapter over `run(config, sink)`).
  [[nodiscard]] std::expected<scenario::CampaignResult, std::string> run(
      scenario::CampaignConfig config) const;

 private:
  Options options_{};
};

}  // namespace ipfs::runtime
