#include "runtime/worker_budget.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace ipfs::runtime {

WorkerLease::WorkerLease(WorkerLease&& other) noexcept
    : budget_(std::exchange(other.budget_, nullptr)),
      granted_(std::exchange(other.granted_, 1)) {}

WorkerLease& WorkerLease::operator=(WorkerLease&& other) noexcept {
  if (this != &other) {
    release();
    budget_ = std::exchange(other.budget_, nullptr);
    granted_ = std::exchange(other.granted_, 1);
  }
  return *this;
}

WorkerLease::~WorkerLease() { release(); }

void WorkerLease::release() noexcept {
  if (budget_ != nullptr && granted_ > 1) {
    budget_->release_extra(granted_ - 1);
  }
  budget_ = nullptr;
  granted_ = 1;
}

unsigned WorkerBudget::hardware() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

WorkerBudget& WorkerBudget::process() noexcept {
  static WorkerBudget budget(hardware());
  return budget;
}

WorkerLease WorkerBudget::lease(unsigned requested) noexcept {
  const unsigned wanted = requested <= 1 ? 0 : requested - 1;
  unsigned committed = committed_.load(std::memory_order_relaxed);
  for (;;) {
    const unsigned available = committed >= total_ ? 0 : total_ - committed;
    const unsigned extra = std::min(wanted, available);
    if (extra == 0) return WorkerLease(this, 1);
    if (committed_.compare_exchange_weak(committed, committed + extra,
                                         std::memory_order_relaxed)) {
      return WorkerLease(this, 1 + extra);
    }
  }
}

unsigned WorkerBudget::split(unsigned total, unsigned ways) noexcept {
  total = std::max(total, 1u);
  ways = std::max(ways, 1u);
  return std::max(total / ways, 1u);
}

}  // namespace ipfs::runtime
