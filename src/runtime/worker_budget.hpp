// Process-wide worker-thread budget (DESIGN.md §13).
//
// Two layers of the runtime spawn worker threads: `ParallelTrialRunner`
// fans independent trials across cores, and a sharded `CampaignEngine`
// fans its population slices across a `ShardPool` *inside* each trial.
// Nested naively, trials × shards oversubscribes the machine.  The budget
// is the shared accounting both layers draw from: a process-global count
// of committed workers, capped at hardware concurrency, claimed through
// RAII leases.
//
// Accounting model: `committed()` counts runnable threads and starts at 1
// (the thread that owns the budget — it keeps running, or blocks waiting
// on the workers it spawned, in which case one spawned worker inherits
// its slot).  `lease(n)` grants the caller's own thread plus up to `n-1`
// extra workers from the uncommitted remainder, so the grant is always at
// least 1 and the committed total never exceeds `total()`.  Releasing a
// lease returns its extra workers.
//
// Worker counts therefore depend on claim timing under nesting — which is
// exactly why every consumer is required to be worker-count invariant
// (trial sweeps and sharded campaigns are byte-identical at any worker
// count; tests/integration/ enforces it).
//
// This header is a leaf (thread/atomic only): scenario/campaign.cpp uses
// it from below the runtime layer without creating an include cycle.
#pragma once

#include <atomic>

namespace ipfs::runtime {

class WorkerBudget;

/// RAII claim on worker threads.  Default-constructed leases are inert
/// grants of 1 (the calling thread itself).  Movable, not copyable.
class WorkerLease {
 public:
  WorkerLease() = default;
  WorkerLease(WorkerLease&& other) noexcept;
  WorkerLease& operator=(WorkerLease&& other) noexcept;
  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;
  ~WorkerLease();

  /// Workers this lease may run concurrently (calling thread included).
  [[nodiscard]] unsigned granted() const noexcept { return granted_; }

  /// Return the lease's extra workers to the budget now (idempotent).
  void release() noexcept;

 private:
  friend class WorkerBudget;
  WorkerLease(WorkerBudget* budget, unsigned granted) noexcept
      : budget_(budget), granted_(granted) {}

  WorkerBudget* budget_ = nullptr;  ///< null for inert leases
  unsigned granted_ = 1;
};

/// A fixed pool of worker slots claimed via `lease`.  Thread-safe.
class WorkerBudget {
 public:
  /// A budget of `total` concurrent threads (clamped to >= 1, so a
  /// `hardware_concurrency()` of 0 degrades to strictly serial grants).
  explicit WorkerBudget(unsigned total) noexcept
      : total_(total == 0 ? 1 : total) {}

  WorkerBudget(const WorkerBudget&) = delete;
  WorkerBudget& operator=(const WorkerBudget&) = delete;

  /// `std::thread::hardware_concurrency()`, with the "may return 0"
  /// escape hatch resolved to 1.
  [[nodiscard]] static unsigned hardware() noexcept;

  /// The process-global budget (total = `hardware()`), shared by
  /// `ParallelTrialRunner` and sharded campaign engines.
  [[nodiscard]] static WorkerBudget& process() noexcept;

  [[nodiscard]] unsigned total() const noexcept { return total_; }

  /// Currently committed runnable threads, in [1, total()].
  [[nodiscard]] unsigned committed() const noexcept {
    return committed_.load(std::memory_order_relaxed);
  }

  /// Claim up to `requested` workers.  The grant is the calling thread
  /// plus however many of the `requested - 1` extras are still
  /// uncommitted — never 0, never pushing `committed()` past `total()`.
  [[nodiscard]] WorkerLease lease(unsigned requested) noexcept;

  /// The even-split planning policy: how many workers each of `ways`
  /// sibling consumers of a `total`-sized budget should request so the
  /// siblings together fill but never exceed it.  Both arguments clamp
  /// to >= 1; the result is always >= 1.
  [[nodiscard]] static unsigned split(unsigned total, unsigned ways) noexcept;

 private:
  friend class WorkerLease;
  void release_extra(unsigned extra) noexcept {
    committed_.fetch_sub(extra, std::memory_order_relaxed);
  }

  const unsigned total_;
  std::atomic<unsigned> committed_{1};
};

}  // namespace ipfs::runtime
