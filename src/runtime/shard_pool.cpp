#include "runtime/shard_pool.hpp"

#include <algorithm>

namespace ipfs::runtime {

ShardPool::ShardPool(unsigned shards, unsigned workers)
    : shards_(std::max(shards, 1u)),
      workers_(std::clamp(workers, 1u, std::max(shards, 1u))) {
  if (workers_ > 1) {
    helpers_.reserve(workers_ - 1);
    for (unsigned w = 0; w + 1 < workers_; ++w) {
      helpers_.emplace_back([this] { helper_loop(); });
    }
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

std::pair<std::size_t, std::size_t> ShardPool::slice(std::size_t count,
                                                     unsigned shards,
                                                     unsigned shard) noexcept {
  shards = std::max(shards, 1u);
  shard = std::min(shard, shards - 1);
  // Balanced split: slice sizes differ by at most one and concatenate, in
  // shard order, to exactly [0, count).
  return {count * shard / shards, count * (shard + 1) / shards};
}

void ShardPool::run(const std::function<void(unsigned)>& body) {
  if (workers_ <= 1) {
    // No helpers: the inline loop in ascending shard order IS the
    // canonical merge order, so this path is trivially byte-identical.
    for (unsigned shard = 0; shard < shards_; ++shard) body(shard);
    return;
  }

  mutex_.lock();
  body_ = &body;
  ++generation_;
  next_shard_ = 0;
  remaining_ = shards_;
  errors_.assign(shards_, nullptr);
  work_ready_.notify_all();
  drain(body);
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mutex_, std::adopt_lock);
    job_done_.wait(lock, [this] { return remaining_ == 0; });
    body_ = nullptr;
    for (std::exception_ptr& error : errors_) {
      if (error && !first) first = std::exchange(error, nullptr);
    }
  }
  if (first) std::rethrow_exception(first);
}

void ShardPool::drain(const std::function<void(unsigned)>& body) {
  // mutex_ is held (raw) on entry and exit; it is dropped around each
  // body invocation.  Claiming under the mutex keeps the pool's own state
  // trivially race-free — fan-outs are coarse (one claim per population
  // slice), so the lock is cold.
  while (next_shard_ < shards_) {
    const unsigned shard = next_shard_++;
    mutex_.unlock();
    std::exception_ptr error;
    try {
      body(shard);
    } catch (...) {
      error = std::current_exception();
    }
    mutex_.lock();
    if (error) errors_[shard] = error;
    if (--remaining_ == 0) job_done_.notify_all();
  }
}

void ShardPool::helper_loop() {
  mutex_.lock();
  for (std::uint64_t seen = 0;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_, std::adopt_lock);
      work_ready_.wait(lock, [&] {
        return stopping_ || (body_ != nullptr && generation_ != seen);
      });
      if (stopping_) return;  // unlocks via the wrapper
      seen = generation_;
      lock.release();  // back to raw ownership for drain()
    }
    drain(*body_);
  }
}

}  // namespace ipfs::runtime
