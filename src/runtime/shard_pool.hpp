// Fork-join pool for deterministic intra-trial sharding (DESIGN.md §13).
//
// A sharded `CampaignEngine` keeps its event loop single-threaded and
// fans only *pure* whole-population work — churn-chain slab precompute,
// sample tallies, crawler classification — across population shards.
// `ShardPool::run(body)` invokes `body(shard)` once per shard, on up to
// `workers()` threads (the calling thread participates), and returns only
// when every shard finished: a strict barrier, so the engine never
// observes partial fan-out state.
//
// Determinism contract: bodies must write only shard-local state (their
// contiguous slice of per-peer arrays, their slot of a per-shard partial
// buffer).  Shards are claimed from an atomic counter, so *completion*
// order is nondeterministic — the caller merges per-shard results in
// canonical ascending shard order after the barrier, which is what makes
// the merged result independent of both shard count and worker count.
//
// Exceptions thrown by a body are captured per shard and the lowest
// shard's exception is rethrown on the calling thread after the barrier
// (same policy as ParallelTrialRunner's run_pool).
//
// Like worker_budget.hpp this header is a leaf, usable from
// scenario/campaign.cpp without an include cycle.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ipfs::runtime {

class ShardPool {
 public:
  /// A pool driving `shards` shards on `workers` threads (both clamped to
  /// >= 1; workers additionally clamped to shards — an idle helper could
  /// never claim work).  `workers == 1` spawns no threads at all: run()
  /// degrades to an inline loop, byte-identical by the merge contract.
  ShardPool(unsigned shards, unsigned workers);
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool();

  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  [[nodiscard]] unsigned workers() const noexcept { return workers_; }

  /// Invoke `body(shard)` for every shard in [0, shards()) and barrier
  /// until all completed.  Safe to call repeatedly; helpers persist
  /// across calls.  Must only be called from the owning thread.
  void run(const std::function<void(unsigned)>& body);

  /// The contiguous half-open index range [first, last) shard `shard` of
  /// `shards` owns over `count` items.  Slices differ in size by at most
  /// one and concatenate, in ascending shard order, to [0, count) — the
  /// canonical merge order.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> slice(
      std::size_t count, unsigned shards, unsigned shard) noexcept;

 private:
  void helper_loop();
  /// Claim and execute shards until the current job is drained.
  void drain(const std::function<void(unsigned)>& body);

  const unsigned shards_;
  const unsigned workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  const std::function<void(unsigned)>* body_ = nullptr;  ///< current job
  std::uint64_t generation_ = 0;  ///< bumps once per run() call
  unsigned next_shard_ = 0;       ///< claim cursor of the current job
  unsigned remaining_ = 0;        ///< shards not yet completed
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;  ///< per shard, current job
  std::vector<std::thread> helpers_;
};

}  // namespace ipfs::runtime
