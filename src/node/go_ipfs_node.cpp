#include "node/go_ipfs_node.hpp"

#include <algorithm>

namespace ipfs::node {

namespace proto = p2p::protocols;

NodeConfig NodeConfig::dht_server(int low_water, int high_water) {
  NodeConfig config;
  config.dht_mode = dht::Mode::kServer;
  config.conn_manager = p2p::ConnManagerConfig::with_watermarks(low_water, high_water);
  return config;
}

NodeConfig NodeConfig::dht_client() {
  NodeConfig config;
  config.dht_mode = dht::Mode::kClient;
  return config;
}

GoIpfsNode::GoIpfsNode(sim::Simulation& simulation, net::Network& network,
                       p2p::PeerId id, p2p::Multiaddr listen_address,
                       NodeConfig config)
    : simulation_(simulation),
      network_(network),
      config_(std::move(config)),
      swarm_(simulation, id, listen_address,
             p2p::Swarm::Config{config_.conn_manager, config_.trim_enabled}) {
  kad_ = std::make_unique<dht::KadEngine>(simulation_, network_, id, config_.dht_mode);
  bitswap_ = std::make_unique<bitswap::BitswapEngine>(network_, id);
  swarm_.add_observer(this);
}

GoIpfsNode::~GoIpfsNode() {
  swarm_.remove_observer(this);
  if (started_) stop();
}

void GoIpfsNode::start() {
  if (started_) return;
  started_ = true;
  network_.add_host(*this);
  swarm_.start();
  refresh_task_ = simulation_.schedule_every(config_.refresh_interval,
                                             [this] { kad_->refresh(); });
}

void GoIpfsNode::stop() {
  if (!started_) return;
  started_ = false;
  simulation_.cancel(refresh_task_);
  refresh_task_ = sim::kInvalidTask;
  swarm_.stop();
  network_.remove_host(id());
}

void GoIpfsNode::bootstrap(const std::vector<p2p::PeerId>& peers) {
  for (const p2p::PeerId& peer : peers) {
    network_.dial(id(), peer, [this, peer](bool ok) {
      if (ok) kad_->observe_peer(peer);
    });
  }
  // Self-lookup once the bootstrap dials had a chance to complete.
  simulation_.schedule_after(2 * common::kSecond, [this] { kad_->refresh(); });
}

bool GoIpfsNode::accept_inbound(const p2p::PeerId& from) {
  (void)from;
  return true;  // go-ipfs accepts and lets the connection manager trim later
}

std::vector<std::string> GoIpfsNode::announced_protocols() const {
  std::vector<std::string> protocols{
      std::string(proto::kIdentify), std::string(proto::kIdentifyPush),
      std::string(proto::kPing),     std::string(proto::kRelayV1),
      std::string(proto::kFetch),    std::string(proto::kMeshsub10),
      std::string(proto::kMeshsub11)};
  if (config_.announce_bitswap) {
    protocols.emplace_back(proto::kBitswap100);
    protocols.emplace_back(proto::kBitswap110);
    protocols.emplace_back(proto::kBitswap120);
    protocols.emplace_back(proto::kBitswap);
  }
  if (config_.announce_autonat) protocols.emplace_back(proto::kAutonat);
  if (kad_->is_server()) protocols.emplace_back(proto::kKad);
  for (const std::string& extra : config_.extra_protocols) protocols.push_back(extra);
  std::sort(protocols.begin(), protocols.end());
  protocols.erase(std::unique(protocols.begin(), protocols.end()), protocols.end());
  return protocols;
}

void GoIpfsNode::set_agent(std::string agent) {
  if (config_.agent == agent) return;
  config_.agent = std::move(agent);
  push_identify_to_all();
}

void GoIpfsNode::set_dht_mode(dht::Mode mode) {
  if (kad_->mode() == mode) return;
  kad_->set_mode(mode);
  push_identify_to_all();
}

void GoIpfsNode::set_autonat(bool announced) {
  if (config_.announce_autonat == announced) return;
  config_.announce_autonat = announced;
  push_identify_to_all();
}

void GoIpfsNode::ping(const p2p::PeerId& peer,
                      std::function<void(common::SimDuration)> on_pong) {
  const std::uint64_t nonce = next_ping_nonce_++;
  pending_pings_[nonce] = {simulation_.now(), std::move(on_pong)};
  net::Message message;
  message.protocol = std::string(proto::kPing);
  message.body = PingRequest{nonce};
  network_.send(id(), peer, std::move(message));
}

void GoIpfsNode::handle_message(const p2p::PeerId& from, const net::Message& message) {
  if (kad_->handle_message(from, message)) return;
  if (bitswap_->handle_message(from, message)) return;
  if (message.protocol == proto::kIdentify || message.protocol == proto::kIdentifyPush) {
    if (const auto* snapshot = std::any_cast<IdentifySnapshot>(&message.body)) {
      handle_identify(from, *snapshot);
    }
    return;
  }
  if (message.protocol == proto::kPing) {
    if (const auto* request = std::any_cast<PingRequest>(&message.body)) {
      net::Message reply;
      reply.protocol = std::string(proto::kPing);
      reply.body = PingResponse{request->nonce};
      network_.send(id(), from, std::move(reply));
    } else if (const auto* response = std::any_cast<PingResponse>(&message.body)) {
      const auto it = pending_pings_.find(response->nonce);
      if (it != pending_pings_.end()) {
        auto [sent_at, callback] = std::move(it->second);
        pending_pings_.erase(it);
        if (callback) callback(simulation_.now() - sent_at);
      }
    }
    return;
  }
}

void GoIpfsNode::on_connection_opened(const p2p::Connection& connection) {
  // Identify fires right after the connection is up, as in go-libp2p.
  send_identify(connection.remote, /*push=*/false);
}

void GoIpfsNode::on_connection_closed(const p2p::Connection& connection) {
  (void)connection;
  // go-ipfs keeps routing-table entries past disconnection; eviction
  // happens on query timeout (KadEngine does exactly that).
}

void GoIpfsNode::send_identify(const p2p::PeerId& to, bool push) {
  IdentifySnapshot snapshot;
  snapshot.agent = config_.agent;
  snapshot.protocols = announced_protocols();
  snapshot.listen_address = swarm_.listen_address();
  snapshot.is_push = push;
  net::Message message;
  message.protocol = std::string(push ? proto::kIdentifyPush : proto::kIdentify);
  message.body = std::move(snapshot);
  network_.send(id(), to, std::move(message));
}

void GoIpfsNode::push_identify_to_all() {
  if (!started_) return;
  for (const p2p::Connection* connection : swarm_.open_connections()) {
    send_identify(connection->remote, /*push=*/true);
  }
}

void GoIpfsNode::handle_identify(const p2p::PeerId& from,
                                 const IdentifySnapshot& snapshot) {
  const auto now = simulation_.now();
  p2p::Peerstore& store = swarm_.peerstore();
  store.set_agent(from, snapshot.agent, now);
  store.set_protocols(from, snapshot.protocols, now);
  store.add_address(from, snapshot.listen_address, now);

  const bool remote_is_server =
      std::find(snapshot.protocols.begin(), snapshot.protocols.end(),
                std::string(proto::kKad)) != snapshot.protocols.end();
  if (remote_is_server) {
    kad_->observe_peer(from);
    // DHT-useful peers survive trims: go-ipfs tags kbucket members and the
    // DHT protects them outright in the connection manager.
    if (kad_->routing_table().contains(from)) {
      swarm_.conn_manager().set_tag(from, 50);
      swarm_.conn_manager().protect(from);
    }
  } else {
    kad_->forget_peer(from);
    swarm_.conn_manager().clear_tag(from);
    swarm_.conn_manager().unprotect(from);
  }
}

}  // namespace ipfs::node
