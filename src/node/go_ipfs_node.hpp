// GoIpfsNode: the go-ipfs reference client model (§III-A).
//
// Composes the substrates exactly as go-ipfs does: a swarm with the
// watermark connection manager, a Kademlia DHT in server or client mode, a
// Bitswap engine, and the identify/ping protocols.  The paper's
// measurement client is this node with instrumentation attached (see
// measure::Recorder); the node itself is a faithful network citizen that
// answers queries, performs refreshes and trims connections.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitswap/bitswap.hpp"
#include "dht/kad.hpp"
#include "net/network.hpp"
#include "node/identify.hpp"
#include "p2p/protocols.hpp"
#include "p2p/swarm.hpp"
#include "sim/simulation.hpp"

namespace ipfs::node {

/// Static configuration of a node (Table I's knobs and more).
struct NodeConfig {
  std::string agent = "go-ipfs/0.11.0-dev/0c2f9d5";
  dht::Mode dht_mode = dht::Mode::kServer;
  p2p::ConnManagerConfig conn_manager;  ///< LowWater/HighWater/grace
  bool trim_enabled = true;
  /// Protocols beyond the core set (meshsub, relay, autonat are defaults).
  std::vector<std::string> extra_protocols;
  common::SimDuration refresh_interval = 5 * common::kMinute;
  bool announce_autonat = true;
  bool announce_bitswap = true;

  [[nodiscard]] static NodeConfig dht_server(int low_water = 600, int high_water = 900);
  [[nodiscard]] static NodeConfig dht_client();
};

/// The go-ipfs reference client.
class GoIpfsNode : public net::Host, private p2p::SwarmObserver {
 public:
  GoIpfsNode(sim::Simulation& simulation, net::Network& network, p2p::PeerId id,
             p2p::Multiaddr listen_address, NodeConfig config);
  ~GoIpfsNode() override;

  GoIpfsNode(const GoIpfsNode&) = delete;
  GoIpfsNode& operator=(const GoIpfsNode&) = delete;

  /// Register with the network and begin background loops.
  void start();
  /// Deregister (connections close as peer-offline on remotes).
  void stop();

  /// Dial the given peers and run a self-lookup, as go-ipfs does on boot.
  void bootstrap(const std::vector<p2p::PeerId>& peers);

  // net::Host
  [[nodiscard]] p2p::Swarm& swarm() override { return swarm_; }
  [[nodiscard]] bool accept_inbound(const p2p::PeerId& from) override;
  void handle_message(const p2p::PeerId& from, const net::Message& message) override;

  [[nodiscard]] const p2p::PeerId& id() const noexcept { return swarm_.local_id(); }
  [[nodiscard]] dht::KadEngine& dht() noexcept { return *kad_; }
  [[nodiscard]] const dht::KadEngine& dht() const noexcept { return *kad_; }
  [[nodiscard]] bitswap::BitswapEngine& bitswap() noexcept { return *bitswap_; }
  [[nodiscard]] const NodeConfig& config() const noexcept { return config_; }

  /// Currently announced protocol list (depends on DHT mode).
  [[nodiscard]] std::vector<std::string> announced_protocols() const;

  [[nodiscard]] const std::string& agent() const noexcept { return config_.agent; }

  /// Change the agent string (client up/downgrade); pushed to all
  /// connected peers via identify push (§IV-B, Table III).
  void set_agent(std::string agent);

  /// Switch DHT server/client role; the changed kad announcement is pushed
  /// (§IV-B: 2'481 peers flapped this 68'396 times).
  void set_dht_mode(dht::Mode mode);

  /// Toggle the autonat announcement (the other flapping protocol).
  void set_autonat(bool announced);

  /// Measure application-level RTT to a connected peer.
  void ping(const p2p::PeerId& peer,
            std::function<void(common::SimDuration)> on_pong);

 private:
  // p2p::SwarmObserver
  void on_connection_opened(const p2p::Connection& connection) override;
  void on_connection_closed(const p2p::Connection& connection) override;

  void send_identify(const p2p::PeerId& to, bool push);
  void push_identify_to_all();
  void handle_identify(const p2p::PeerId& from, const IdentifySnapshot& snapshot);

  sim::Simulation& simulation_;
  net::Network& network_;
  NodeConfig config_;
  p2p::Swarm swarm_;
  std::unique_ptr<dht::KadEngine> kad_;
  std::unique_ptr<bitswap::BitswapEngine> bitswap_;
  sim::TaskId refresh_task_ = sim::kInvalidTask;
  std::uint64_t next_ping_nonce_ = 1;
  std::unordered_map<std::uint64_t,
                     std::pair<common::SimTime, std::function<void(common::SimDuration)>>>
      pending_pings_;
  bool started_ = false;
};

}  // namespace ipfs::node
