// The identify protocol (/ipfs/id/1.0.0 and /ipfs/id/push/1.0.0).
//
// Identify is how the paper's measurement nodes learn everything in
// §IV-B: agent-version strings, supported protocols and multiaddresses all
// arrive via identify exchanges shortly after a connection opens, and later
// changes arrive via identify *push*.  A peer whose connection dies before
// identify completes stays in the dataset with no version string — the
// paper's 3'059 "missing" agents.
#pragma once

#include <string>
#include <vector>

#include "p2p/multiaddr.hpp"
#include "p2p/peer_id.hpp"

namespace ipfs::node {

/// The payload both sides exchange after connecting (and push on change).
struct IdentifySnapshot {
  std::string agent;
  std::vector<std::string> protocols;
  p2p::Multiaddr listen_address;
  bool is_push = false;
};

/// Ping RPC bodies (/ipfs/ping/1.0.0).
struct PingRequest {
  std::uint64_t nonce = 0;
};
struct PingResponse {
  std::uint64_t nonce = 0;
};

}  // namespace ipfs::node
