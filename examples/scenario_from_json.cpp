// Declarative scenarios: define a campaign as a JSON document, parse it
// into a `scenario::ScenarioSpec`, and run it — the same path the
// `ipfs_sim` CLI drives from scenario files (docs/SCENARIOS.md).
//
//   ./examples/scenario_from_json
//
// The embedded document below is a scaled-down variant of the paper's P1
// period with one behavioural override: crawler agents sweep three times
// as fast.  Everything not specified inherits the calibrated defaults, so
// a scenario file only states what makes it different.
#include <iostream>
#include <sstream>

#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"

int main() {
  using namespace ipfs;

  // 1. A scenario as data.  `ipfs_sim run file.json` does exactly this
  //    with the file's contents.
  static constexpr const char* kScenario = R"({
    "name": "p1-fast-crawlers",
    "description": "P1 at 1% scale with 3x crawler sweep rate",
    "period": {
      "name": "P1",
      "duration_ms": 86400000,
      "go_ipfs": {"mode": "server", "low_water": 2000, "high_water": 4000},
      "hydra": {"heads": 2, "low_water": 2000, "high_water": 4000}
    },
    "population": {
      "scale": 0.01,
      "categories": {
        "crawler": {"queries_per_hour": 16.5}
      }
    },
    "campaign": {"seed": 7}
  })";

  // 2. Parse + validate.  Errors name the offending field, e.g.
  //    "population.categories.crawler.queries_per_hour: expected a number".
  auto spec = scenario::ScenarioSpec::from_json(kScenario);
  if (!spec) {
    std::cerr << "invalid scenario: " << spec.error() << "\n";
    return 1;
  }
  std::cout << "scenario '" << spec->name << "': " << spec->description << "\n";

  // 3. Run it through the validating engine factory.
  auto engine = scenario::CampaignEngine::create(spec->to_campaign_config());
  if (!engine) {
    std::cerr << "cannot run: " << engine.error() << "\n";
    return 1;
  }
  const scenario::CampaignResult result = engine->run();

  std::cout << "population: " << result.population_size << " remote peers\n";
  if (result.go_ipfs) {
    std::cout << "go-ipfs vantage: " << result.go_ipfs->peer_count()
              << " peers, " << result.go_ipfs->connection_count()
              << " connections\n";
  }
  if (result.hydra_union) {
    std::cout << "hydra union:     " << result.hydra_union->peer_count()
              << " peers across " << result.hydra_heads.size() << " heads\n";
  }
  const auto [crawl_min, crawl_max] = result.crawler_min_max();
  std::cout << "crawler band:    " << crawl_min << " - " << crawl_max
            << " reached servers per sweep\n";

  // 4. The round trip: every spec serialises back to a self-documenting
  //    document with all defaults made explicit — handy as a template.
  std::cout << "\nFull spec with defaults expanded "
            << "(save as my_scenario.json and edit):\n"
            << spec->to_json_string();
  return 0;
}
