// Passive measurement campaign: run a scaled-down version of the paper's
// P2 period (go-ipfs server at 18k/20k + two hydra heads, one day) against
// the synthetic December-2021 population, print the headline observations
// and stream the go-ipfs dataset to JSON as it is published — the same
// artefact the paper's instrumented clients produced.
//
//   ./examples/passive_measurement [scale] [out.json] [--connections] [--churn]
//
// Defaults: scale 0.1, dataset written to passive_measurement.json.
// --connections includes the per-connection log in the export (the input
// `ipfs_sim calibrate` needs for gap-threshold session reconstruction);
// --churn animates the population with the default session-churn model so
// the trace contains genuine join/leave dynamics to calibrate against.
//
// This example shows the sink-based campaign API: a JSON export sink and
// the in-memory result sink both subscribe to one run through a fan-out.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/connection_stats.hpp"
#include "analysis/metadata.hpp"
#include "common/parse.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ipfs;

  double scale = 0.1;
  std::string out_path = "passive_measurement.json";
  bool include_connections = false;
  bool with_churn = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connections") {
      include_connections = true;
    } else if (arg == "--churn") {
      with_churn = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (!positional.empty()) {
    const auto parsed = common::parse_finite_double(positional[0]);
    if (!parsed) {
      std::cerr << "passive_measurement: scale: " << parsed.error() << "\n";
      return 2;
    }
    if (*parsed <= 0.0) {
      std::cerr << "passive_measurement: scale: must be > 0, got '"
                << positional[0] << "'\n";
      return 2;
    }
    scale = *parsed;
  }
  if (positional.size() > 1) out_path = positional[1];
  if (positional.size() > 2) {
    std::cerr << "passive_measurement: unexpected argument '" << positional[2]
              << "'\n";
    return 2;
  }

  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P2();
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = 20211213;
  if (with_churn) config.churn = scenario::ChurnSpec{};

  auto engine = scenario::CampaignEngine::create(config);
  if (!engine) {
    std::cerr << "invalid campaign config: " << engine.error() << "\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  std::cout << "Running period " << config.period.name << " ("
            << common::format_duration(config.period.duration) << ", scale " << scale
            << (with_churn ? ", churned" : "") << ") ...\n";

  // Peer records only by default: the connection log would dominate the
  // file.  --connections keeps it (calibration input).
  measure::JsonExportSink::Options json_options;
  json_options.include_connections = include_connections;
  json_options.role_filter = measure::DatasetRole::kVantage;
  measure::JsonExportSink json_sink(out, json_options);
  scenario::CampaignResultSink result_sink;
  measure::FanOutSink sinks{&json_sink, &result_sink};
  engine->run(sinks);
  const auto result = result_sink.take_result();

  std::cout << "Population: " << result.population_size << " peers, "
            << result.events_executed << " simulation events.\n\n";

  auto report = [](const std::string& name, const measure::Dataset& dataset) {
    const auto stats = analysis::compute_connection_stats(dataset);
    std::cout << name << ": " << dataset.peer_count() << " PIDs, "
              << dataset.connection_count() << " connections"
              << " (All avg " << common::format_fixed(stats.all.average_s, 1)
              << " s, median " << common::format_fixed(stats.all.median_s, 1)
              << " s; Peer avg " << common::format_fixed(stats.peer.average_s, 1)
              << " s)\n";
  };
  report("go-ipfs    ", *result.go_ipfs);
  for (std::size_t h = 0; h < result.hydra_heads.size(); ++h) {
    report("Hydra H" + std::to_string(h) + "   ", result.hydra_heads[h]);
  }
  report("Hydra union", *result.hydra_union);

  const auto summary = analysis::summarize_metadata(*result.go_ipfs);
  std::cout << "\nMetadata seen by go-ipfs: " << summary.distinct_agent_strings
            << " agent strings, " << summary.distinct_protocols << " protocols, "
            << summary.kad_supporters << " DHT servers, " << summary.missing_agent_pids
            << " PIDs without version string.\n";

  std::cout << "\ngo-ipfs peer records streamed to " << out_path << " ("
            << "like the paper's periodic JSON dumps, §III-A).\n";
  return 0;
}
