// Passive measurement campaign: run a scaled-down version of the paper's
// P2 period (go-ipfs server at 18k/20k + two hydra heads, one day) against
// the synthetic December-2021 population, print the headline observations
// and export the go-ipfs dataset as JSON — the same artefact the paper's
// instrumented clients produced.
//
//   ./examples/passive_measurement [scale] [out.json]
//
// Defaults: scale 0.1, dataset written to passive_measurement.json.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/connection_stats.hpp"
#include "analysis/metadata.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ipfs;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const std::string out_path = argc > 2 ? argv[2] : "passive_measurement.json";

  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P2();
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = 20211213;

  std::cout << "Running period " << config.period.name << " ("
            << common::format_duration(config.period.duration) << ", scale " << scale
            << ") ...\n";
  scenario::CampaignEngine engine(config);
  const auto result = engine.run();

  std::cout << "Population: " << result.population_size << " peers, "
            << result.events_executed << " simulation events.\n\n";

  auto report = [](const std::string& name, const measure::Dataset& dataset) {
    const auto stats = analysis::compute_connection_stats(dataset);
    std::cout << name << ": " << dataset.peer_count() << " PIDs, "
              << dataset.connection_count() << " connections"
              << " (All avg " << common::format_fixed(stats.all.average_s, 1)
              << " s, median " << common::format_fixed(stats.all.median_s, 1)
              << " s; Peer avg " << common::format_fixed(stats.peer.average_s, 1)
              << " s)\n";
  };
  report("go-ipfs    ", *result.go_ipfs);
  for (std::size_t h = 0; h < result.hydra_heads.size(); ++h) {
    report("Hydra H" + std::to_string(h) + "   ", result.hydra_heads[h]);
  }
  report("Hydra union", *result.hydra_union);

  const auto summary = analysis::summarize_metadata(*result.go_ipfs);
  std::cout << "\nMetadata seen by go-ipfs: " << summary.distinct_agent_strings
            << " agent strings, " << summary.distinct_protocols << " protocols, "
            << summary.kad_supporters << " DHT servers, " << summary.missing_agent_pids
            << " PIDs without version string.\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  // Peer records only: the connection log would dominate the file.
  result.go_ipfs->export_json(out, /*include_connections=*/false);
  std::cout << "\ngo-ipfs peer records exported to " << out_path << " ("
            << "like the paper's periodic JSON dumps, §III-A).\n";
  return 0;
}
