// Passive measurement campaign: run a scaled-down version of the paper's
// P2 period (go-ipfs server at 18k/20k + two hydra heads, one day) against
// the synthetic December-2021 population, print the headline observations
// and stream the go-ipfs dataset to JSON as it is published — the same
// artefact the paper's instrumented clients produced.
//
//   ./examples/passive_measurement [scale] [out.json]
//
// Defaults: scale 0.1, dataset written to passive_measurement.json.
//
// This example shows the sink-based campaign API: a JSON export sink and
// the in-memory result sink both subscribe to one run through a fan-out.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/connection_stats.hpp"
#include "analysis/metadata.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ipfs;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const std::string out_path = argc > 2 ? argv[2] : "passive_measurement.json";

  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P2();
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = 20211213;

  auto engine = scenario::CampaignEngine::create(config);
  if (!engine) {
    std::cerr << "invalid campaign config: " << engine.error() << "\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }

  std::cout << "Running period " << config.period.name << " ("
            << common::format_duration(config.period.duration) << ", scale " << scale
            << ") ...\n";

  // Peer records only: the connection log would dominate the file.
  measure::JsonExportSink::Options json_options;
  json_options.include_connections = false;
  json_options.role_filter = measure::DatasetRole::kVantage;
  measure::JsonExportSink json_sink(out, json_options);
  scenario::CampaignResultSink result_sink;
  measure::FanOutSink sinks{&json_sink, &result_sink};
  engine->run(sinks);
  const auto result = result_sink.take_result();

  std::cout << "Population: " << result.population_size << " peers, "
            << result.events_executed << " simulation events.\n\n";

  auto report = [](const std::string& name, const measure::Dataset& dataset) {
    const auto stats = analysis::compute_connection_stats(dataset);
    std::cout << name << ": " << dataset.peer_count() << " PIDs, "
              << dataset.connection_count() << " connections"
              << " (All avg " << common::format_fixed(stats.all.average_s, 1)
              << " s, median " << common::format_fixed(stats.all.median_s, 1)
              << " s; Peer avg " << common::format_fixed(stats.peer.average_s, 1)
              << " s)\n";
  };
  report("go-ipfs    ", *result.go_ipfs);
  for (std::size_t h = 0; h < result.hydra_heads.size(); ++h) {
    report("Hydra H" + std::to_string(h) + "   ", result.hydra_heads[h]);
  }
  report("Hydra union", *result.hydra_union);

  const auto summary = analysis::summarize_metadata(*result.go_ipfs);
  std::cout << "\nMetadata seen by go-ipfs: " << summary.distinct_agent_strings
            << " agent strings, " << summary.distinct_protocols << " protocols, "
            << summary.kad_supporters << " DHT servers, " << summary.missing_agent_pids
            << " PIDs without version string.\n";

  std::cout << "\ngo-ipfs peer records streamed to " << out_path << " ("
            << "like the paper's periodic JSON dumps, §III-A).\n";
  return 0;
}
