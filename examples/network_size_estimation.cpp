// Network-size estimation walkthrough (§V): run a P4-style campaign and
// apply both of the paper's estimators — multiaddress grouping and
// connection-time classification — step by step, showing why raw PID
// counts overestimate the network.
//
//   ./examples/network_size_estimation [scale]     (default scale 0.1)
#include <iostream>

#include "analysis/classification.hpp"
#include "analysis/size_estimation.hpp"
#include "common/parse.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ipfs;
  double scale = 0.1;
  if (argc > 1) {
    const auto parsed = common::parse_finite_double(argv[1]);
    if (!parsed) {
      std::cerr << "network_size_estimation: scale: " << parsed.error() << "\n";
      return 2;
    }
    if (*parsed <= 0.0) {
      std::cerr << "network_size_estimation: scale: must be > 0, got '"
                << argv[1] << "'\n";
      return 2;
    }
    scale = *parsed;
  }

  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P4();
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = 20211210;
  std::cout << "Running P4 (3 days) at scale " << scale << " ...\n";
  auto engine = scenario::CampaignEngine::create(config);
  if (!engine) {
    std::cerr << "invalid campaign config: " << engine.error() << "\n";
    return 1;
  }
  const auto result = engine->run();
  const measure::Dataset& dataset = *result.go_ipfs;

  std::cout << "\nStep 0 — the naive answer:\n  " << dataset.peer_count()
            << " PIDs observed; but one participant can run many PIDs (§V).\n";

  const auto grouping = analysis::group_by_multiaddr(dataset);
  std::cout << "\nStep 1 — group by connected IP (§V-A):\n  "
            << grouping.connected_pids << " connected PIDs from "
            << grouping.distinct_ips << " IPs collapse into " << grouping.groups
            << " groups\n  (" << grouping.singleton_groups << " singletons; largest "
            << "group " << grouping.largest_group
            << " PIDs — a rotating-PID operator).\n"
            << "  Estimated network size: ~" << grouping.groups << " peers.\n";

  const auto classes = analysis::classify_peers(dataset);
  common::TextTable table("Step 2 — classify by connection behaviour (§V-B)");
  table.set_header({"Class", "Peers", "DHT servers"});
  for (std::size_t c = 0; c < 4; ++c) {
    table.add_row({std::string(analysis::to_string(static_cast<analysis::PeerClass>(c))),
                   common::with_thousands(classes.peers[c]),
                   common::with_thousands(classes.dht_servers[c])});
  }
  table.print(std::cout);

  const auto report = analysis::estimate_network_size(dataset);
  std::cout << "\nStep 3 — combine (§V conclusion):\n"
            << "  peers by IP grouping:        " << report.estimated_peers_by_ip
            << "\n  PIDs per grouped peer:       "
            << common::format_fixed(report.pids_per_ip_group, 2)
            << "\n  core network (heavy peers):  " << report.core_network_lower_bound
            << "\n  ... of which DHT servers:    " << report.heavy_dht_servers
            << "\n  core user base (clients):    " << report.core_user_base << "\n";

  std::cout << "\nCaveats the paper stresses: NAT and clouds merge distinct peers\n"
               "into one group, rotating PIDs inflate everything, and connection\n"
               "churn != node churn, so light/one-time counts overstate churners.\n";
  return 0;
}
