// Active vs passive horizon (§III-C, Fig. 2) at protocol fidelity: build a
// real message-level DHT with servers and clients through the runtime
// facade, run the Kademlia crawler against it, and compare what the
// crawler reaches with what a passive vantage accumulated — including a
// node that left mid-run, which only the passive node's "historic
// snapshot" remembers.
//
//   ./examples/crawler_comparison
#include <iostream>

#include "runtime/testbed.hpp"

int main() {
  using namespace ipfs;

  auto testbed = runtime::TestbedBuilder().seed(9).build();

  // Passive vantage (go-ipfs DHT server) with a recorder.
  auto vantage = testbed.add_server();
  measure::RecorderConfig recorder_config;
  recorder_config.vantage = "passive";
  measure::Recorder& recorder = vantage.attach_recorder(recorder_config);

  // 18 DHT servers and 9 clients bootstrap through the vantage.
  testbed.add_servers(18).add_clients(9).bootstrap_all_via(vantage);
  testbed.run_for(30 * common::kMinute);

  // One server disappears: active crawls lose it, the passive log keeps it.
  testbed.node(5).stop();
  testbed.run_for(10 * common::kMinute);

  // Crawl the DHT, nebula-style.
  crawler::Crawler& crawler = testbed.add_crawler();
  crawler::CrawlResult crawl;
  crawler.crawl({vantage.id()}, [&](crawler::CrawlResult r) { crawl = std::move(r); });
  testbed.run_for(30 * common::kMinute);
  recorder.finish();

  std::cout << "Network ground truth: 19 DHT servers (1 departed), 9 clients.\n\n";
  std::cout << "Active crawler:\n"
            << "  reached servers:  " << crawl.reached.size() << "\n"
            << "  learned PIDs:     " << crawl.learned.size()
            << "  (incl. stale routing entries)\n"
            << "  dial failures:    " << crawl.dial_failures << "\n"
            << "  queries sent:     " << crawl.queries_sent << "\n";

  const measure::Dataset& dataset = recorder.dataset();
  std::size_t servers_seen = 0;
  std::size_t clients_seen = 0;
  for (const auto& peer : dataset.peers()) {
    if (peer.ever_dht_server) {
      ++servers_seen;
    } else {
      ++clients_seen;
    }
  }
  std::cout << "\nPassive vantage:\n"
            << "  PIDs in peerstore: " << dataset.peer_count() << "\n"
            << "  DHT servers seen:  " << servers_seen
            << "  (keeps the departed node, §III-C)\n"
            << "  DHT clients seen:  " << clients_seen
            << "  (invisible to the crawler)\n";

  std::cout << "\nThe paper's Fig. 2 asymmetry in miniature: the crawler only\n"
               "reaches live DHT servers, while the passive node's historic\n"
               "snapshot holds clients and departed peers as well.\n";
  crawler.stop();
  return 0;
}
