// Active vs passive horizon (§III-C, Fig. 2) at protocol fidelity: build a
// real message-level DHT with servers and clients, run the Kademlia
// crawler against it, and compare what the crawler reaches with what a
// passive vantage accumulated — including a node that left mid-run, which
// only the passive node's "historic snapshot" remembers.
//
//   ./examples/crawler_comparison
#include <iostream>

#include "crawler/crawler.hpp"
#include "measure/recorder.hpp"
#include "net/ip_allocator.hpp"
#include "net/network.hpp"
#include "node/go_ipfs_node.hpp"

int main() {
  using namespace ipfs;

  sim::Simulation sim;
  net::Network network(sim, common::Rng(9));
  net::IpAllocator ips{common::Rng(3)};
  common::Rng ids(5);

  // Passive vantage (go-ipfs DHT server) with a recorder.
  node::GoIpfsNode vantage(sim, network, p2p::PeerId::random(ids),
                           net::swarm_tcp_addr(ips.unique_v4()),
                           node::NodeConfig::dht_server());
  vantage.start();
  measure::RecorderConfig recorder_config;
  recorder_config.vantage = "passive";
  measure::Recorder recorder(sim, vantage.swarm(), recorder_config);
  vantage.swarm().peerstore().add_observer(&recorder);
  recorder.start();

  // 18 DHT servers and 9 clients bootstrap through the vantage.
  std::vector<std::unique_ptr<node::GoIpfsNode>> peers;
  auto add_peer = [&](node::NodeConfig config) -> node::GoIpfsNode& {
    peers.push_back(std::make_unique<node::GoIpfsNode>(
        sim, network, p2p::PeerId::random(ids), net::swarm_tcp_addr(ips.unique_v4()),
        config));
    peers.back()->start();
    peers.back()->bootstrap({vantage.id()});
    return *peers.back();
  };
  for (int i = 0; i < 18; ++i) add_peer(node::NodeConfig::dht_server());
  for (int i = 0; i < 9; ++i) add_peer(node::NodeConfig::dht_client());

  sim.run_until(30 * common::kMinute);

  // One server disappears: active crawls lose it, the passive log keeps it.
  peers[4]->stop();
  sim.run_until(sim.now() + 10 * common::kMinute);

  // Crawl the DHT, nebula-style.
  crawler::Crawler crawler(sim, network, p2p::PeerId::random(ids),
                           net::swarm_tcp_addr(ips.unique_v4()), {});
  crawler.start();
  crawler::CrawlResult crawl;
  crawler.crawl({vantage.id()}, [&](crawler::CrawlResult r) { crawl = std::move(r); });
  sim.run_until(sim.now() + 30 * common::kMinute);
  recorder.finish();

  std::cout << "Network ground truth: 19 DHT servers (1 departed), 9 clients.\n\n";
  std::cout << "Active crawler:\n"
            << "  reached servers:  " << crawl.reached.size() << "\n"
            << "  learned PIDs:     " << crawl.learned.size()
            << "  (incl. stale routing entries)\n"
            << "  dial failures:    " << crawl.dial_failures
            << "  (the departed node)\n"
            << "  queries sent:     " << crawl.queries_sent << "\n";

  const measure::Dataset& dataset = recorder.dataset();
  std::size_t servers_seen = 0;
  std::size_t clients_seen = 0;
  for (const auto& peer : dataset.peers()) {
    if (peer.ever_dht_server) {
      ++servers_seen;
    } else {
      ++clients_seen;
    }
  }
  std::cout << "\nPassive vantage:\n"
            << "  PIDs in peerstore: " << dataset.peer_count() << "\n"
            << "  DHT servers seen:  " << servers_seen
            << "  (keeps the departed node, §III-C)\n"
            << "  DHT clients seen:  " << clients_seen
            << "  (invisible to the crawler)\n";

  std::cout << "\nThe paper's Fig. 2 asymmetry in miniature: the crawler only\n"
               "reaches live DHT servers, while the passive node's historic\n"
               "snapshot holds clients and departed peers as well.\n";
  crawler.stop();
  return 0;
}
