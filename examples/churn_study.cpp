// Churn study (§IV-A, §VI): demonstrate that IPFS connection churn is
// driven by the connection manager, not by node churn.  Two campaigns over
// the same population — default watermarks vs high watermarks — and a
// breakdown of *why* connections closed in each.  A third campaign then
// turns on *session-level* node churn (scenario::ChurnModel, DESIGN.md
// §10) and reconstructs what the vantage observed: sessions, their length
// CDF, and observed-vs-true network size.
//
//   ./examples/churn_study [scale]     (default scale 0.1)
#include <iostream>

#include "analysis/churn_stats.hpp"
#include "analysis/connection_stats.hpp"
#include "common/parse.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"

namespace {

using namespace ipfs;

scenario::CampaignResult run(double scale, int low, int high) {
  scenario::CampaignConfig config;
  config.period = scenario::PeriodSpec::P4();
  config.period.duration = common::kDay;
  config.period.go_low_water = low;
  config.period.go_high_water = high;
  config.population = scenario::PopulationSpec::test_scale(scale);
  config.seed = 20211206;
  config.enable_crawler = false;
  auto engine = scenario::CampaignEngine::create(std::move(config));
  if (!engine) {
    std::cerr << "invalid campaign config: " << engine.error() << "\n";
    std::exit(1);
  }
  return engine->run();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.1;
  if (argc > 1) {
    const auto parsed = common::parse_finite_double(argv[1]);
    if (!parsed) {
      std::cerr << "churn_study: scale: " << parsed.error() << "\n";
      return 2;
    }
    if (*parsed <= 0.0) {
      std::cerr << "churn_study: scale: must be > 0, got '" << argv[1]
                << "'\n";
      return 2;
    }
    scale = *parsed;
  }
  // Scale the paper's default 600/900 watermarks with the population.
  const int low = std::max(4, static_cast<int>(600 * scale));
  const int high = std::max(6, static_cast<int>(900 * scale));

  std::cout << "Population scale " << scale << "; default watermarks " << low << "/"
            << high << " vs high watermarks.\n";

  common::TextTable table("Why connections closed (1-day campaigns)");
  table.set_header({"Config", "Conns", "own trim", "remote trim", "query done",
                    "node left", "All avg"});
  for (const bool high_watermarks : {false, true}) {
    const auto result = high_watermarks ? run(scale, 18000, 20000)
                                        : run(scale, low, high);
    const auto& dataset = *result.go_ipfs;
    const auto reasons = analysis::compute_close_reasons(dataset);
    const auto stats = analysis::compute_connection_stats(dataset);
    table.add_row({high_watermarks ? "18k/20k (P2-style)" : "default-style",
                   common::with_thousands(stats.all.count),
                   common::with_thousands(reasons.local_trim),
                   common::with_thousands(reasons.remote_trim),
                   common::with_thousands(reasons.remote_close),
                   common::with_thousands(reasons.peer_offline),
                   common::format_fixed(stats.all.average_s, 1) + " s"});
  }
  table.print(std::cout);

  std::cout << "\nReading: with default-style watermarks the vantage itself closes\n"
               "the bulk of connections ('own trim'); raising the watermarks\n"
               "shifts closes to the remote side and to genuine node departures,\n"
               "and the average duration grows by an order of magnitude.  This is\n"
               "the paper's §VI recommendation to raise DHT-server defaults.\n";

  // ---- session-level node churn (DESIGN.md §10) -----------------------------

  scenario::ScenarioSpec churned = *scenario::ScenarioSpec::builtin("churn-baseline");
  churned.population.scale = scale;
  auto engine = scenario::CampaignEngine::create(churned.to_campaign_config());
  if (!engine) {
    std::cerr << "invalid campaign config: " << engine.error() << "\n";
    return 1;
  }
  const auto result = engine->run();
  const auto sessions = analysis::reconstruct_sessions(*result.go_ipfs);
  const auto stats = analysis::compute_churn_stats(sessions);

  std::cout << "\nNow with the 'churn-baseline' lifecycle model engaged (every\n"
               "category joins and leaves; the vantage sees real session traces):\n\n";
  std::cout << "  sessions observed        " << common::with_thousands(
                   static_cast<std::uint64_t>(stats.session_count))
            << " across " << common::with_thousands(
                   static_cast<std::uint64_t>(stats.peers)) << " peers ("
            << common::with_thousands(
                   static_cast<std::uint64_t>(stats.multi_session_peers))
            << " left and returned)\n";
  std::cout << "  session length           mean "
            << common::format_fixed(stats.mean_session_s / 60.0, 1)
            << " min, median "
            << common::format_fixed(stats.median_session_s / 60.0, 1) << " min\n";

  const auto series = analysis::observed_vs_true(sessions, result.population_samples);
  common::MinMaxBand observed_share;
  common::MinMaxBand online_share;
  for (const auto& sample : series) {
    observed_share.add(sample.observed, sample.observed);
    online_share.add(sample.true_online, sample.true_online);
  }
  if (!series.empty()) {
    std::cout << "  observed network size    " << observed_share.low() << ".."
              << observed_share.high() << " peers in-session at the vantage\n"
              << "  true online population   " << online_share.low() << ".."
              << online_share.high() << " of " << series.front().true_total
              << " total — the passive vantage always sees less than exists\n";
  }
  return 0;
}
