// Quickstart: build a small message-level IPFS network through the
// `ipfs::runtime` facade, attach a passive measurement recorder to one
// node, let the network live for an hour of simulated time and print what
// the vantage observed.
//
//   ./examples/quickstart
//
// This exercises the protocol-fidelity path end to end: swarm, connection
// manager, Kademlia DHT, identify and the measurement recorder — all wired
// by TestbedBuilder from a single seed.
#include <iostream>

#include "analysis/connection_stats.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/testbed.hpp"

int main() {
  using namespace ipfs;

  // 1. One seed wires the clock, the network fabric, the address space and
  //    every node identity.
  auto testbed = runtime::TestbedBuilder().seed(42).build();

  // 2. The measurement vantage: a go-ipfs DHT server with deliberately low
  //    watermarks so trimming is visible within the hour.
  auto vantage = testbed.add_server(node::NodeConfig::dht_server(/*low_water=*/8,
                                                                /*high_water=*/12));
  measure::RecorderConfig recorder_config;
  recorder_config.vantage = "quickstart-vantage";
  measure::Recorder& recorder = vantage.attach_recorder(recorder_config);

  // 3. Twenty-five peers join through the vantage: 15 DHT servers, 10
  //    clients — clients are what a crawler can never see (§III).
  auto server_config = node::NodeConfig::dht_server();
  server_config.agent = "go-ipfs/0.11.0/0c2f9d5";
  auto client_config = node::NodeConfig::dht_client();
  client_config.agent = "go-ipfs/0.10.0/64b532f";
  testbed.add_servers(15, server_config)
      .add_clients(10, client_config)
      .bootstrap_all_via(vantage);

  // 4. One simulated hour of network life.
  testbed.run_for(1 * common::kHour);
  recorder.finish();

  // 5. What did the passive vantage see?
  const measure::Dataset& dataset = recorder.dataset();
  std::cout << "Quickstart vantage after 1 h:\n"
            << "  peers known:        " << dataset.peer_count() << "\n"
            << "  connections logged: " << dataset.connection_count() << "\n"
            << "  open right now:     " << vantage.swarm().open_count()
            << " (watermarks 8/12)\n";

  std::size_t servers = 0;
  for (const auto& peer : dataset.peers()) {
    if (peer.ever_dht_server) ++servers;
  }
  std::cout << "  DHT servers seen:   " << servers << "\n";

  const auto stats = analysis::compute_connection_stats(dataset);
  std::cout << "  connection stats:   All n=" << stats.all.count
            << " avg=" << common::format_fixed(stats.all.average_s, 1)
            << " s, median=" << common::format_fixed(stats.all.median_s, 1) << " s\n";

  const auto reasons = analysis::compute_close_reasons(dataset);
  std::cout << "  closed by own trim: " << reasons.local_trim
            << "  (the paper's churn mechanism, §IV-A)\n"
            << "\nNext: examples/passive_measurement for a paper-scale campaign,\n"
            << "examples/crawler_comparison for the active-vs-passive horizon.\n";
  return 0;
}
