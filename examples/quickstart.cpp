// Quickstart: build a small message-level IPFS network, attach a passive
// measurement recorder to one node, let the network live for an hour of
// simulated time and print what the vantage observed.
//
//   ./examples/quickstart
//
// This exercises the protocol-fidelity path end to end: swarm, connection
// manager, Kademlia DHT, identify and the measurement recorder.
#include <iostream>

#include "analysis/connection_stats.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "measure/recorder.hpp"
#include "net/ip_allocator.hpp"
#include "net/network.hpp"
#include "node/go_ipfs_node.hpp"

int main() {
  using namespace ipfs;

  // 1. A simulation clock and a network fabric.
  sim::Simulation sim;
  net::Network network(sim, common::Rng(42));
  net::IpAllocator ips{common::Rng(7)};
  common::Rng ids(1);

  // 2. The measurement vantage: a go-ipfs DHT server with deliberately low
  //    watermarks so trimming is visible within the hour.
  auto vantage_config = node::NodeConfig::dht_server(/*low_water=*/8, /*high_water=*/12);
  node::GoIpfsNode vantage(sim, network, p2p::PeerId::random(ids),
                           net::swarm_tcp_addr(ips.unique_v4()), vantage_config);
  vantage.start();

  measure::RecorderConfig recorder_config;
  recorder_config.vantage = "quickstart-vantage";
  measure::Recorder recorder(sim, vantage.swarm(), recorder_config);
  vantage.swarm().peerstore().add_observer(&recorder);
  recorder.start();

  // 3. Twenty-five peers join through the vantage: 15 DHT servers, 10
  //    clients — clients are what a crawler can never see (§III).
  std::vector<std::unique_ptr<node::GoIpfsNode>> peers;
  for (int i = 0; i < 25; ++i) {
    auto config = i < 15 ? node::NodeConfig::dht_server() : node::NodeConfig::dht_client();
    config.agent = i < 15 ? "go-ipfs/0.11.0/0c2f9d5" : "go-ipfs/0.10.0/64b532f";
    peers.push_back(std::make_unique<node::GoIpfsNode>(
        sim, network, p2p::PeerId::random(ids), net::swarm_tcp_addr(ips.unique_v4()),
        config));
    peers.back()->start();
    peers.back()->bootstrap({vantage.id()});
  }

  // 4. One simulated hour of network life.
  sim.run_until(1 * common::kHour);
  recorder.finish();

  // 5. What did the passive vantage see?
  const measure::Dataset& dataset = recorder.dataset();
  std::cout << "Quickstart vantage after 1 h:\n"
            << "  peers known:        " << dataset.peer_count() << "\n"
            << "  connections logged: " << dataset.connection_count() << "\n"
            << "  open right now:     " << vantage.swarm().open_count()
            << " (watermarks 8/12)\n";

  std::size_t servers = 0;
  for (const auto& peer : dataset.peers()) {
    if (peer.ever_dht_server) ++servers;
  }
  std::cout << "  DHT servers seen:   " << servers << "\n";

  const auto stats = analysis::compute_connection_stats(dataset);
  std::cout << "  connection stats:   All n=" << stats.all.count
            << " avg=" << common::format_fixed(stats.all.average_s, 1)
            << " s, median=" << common::format_fixed(stats.all.median_s, 1) << " s\n";

  const auto reasons = analysis::compute_close_reasons(dataset);
  std::cout << "  closed by own trim: " << reasons.local_trim
            << "  (the paper's churn mechanism, §IV-A)\n"
            << "\nNext: examples/passive_measurement for a paper-scale campaign,\n"
            << "examples/crawler_comparison for the active-vs-passive horizon.\n";
  return 0;
}
