// ipfs_sim — the declarative scenario driver (DESIGN.md §8).
//
// Runs measurement campaigns described by `scenario::ScenarioSpec` JSON
// files (docs/SCENARIOS.md) without recompiling anything:
//
//   ipfs_sim list [DIR]                 builtin + on-disk scenarios
//   ipfs_sim validate FILE...           parse + validate scenario files
//   ipfs_sim run SCENARIO [options]     execute a scenario
//   ipfs_sim export NAME|--all [opts]   write builtin specs as JSON files
//   ipfs_sim selftest                   tiny runtime::TestbedBuilder check
//
// SCENARIO is a path to a .json file or the name of a builtin ("p4").
// `run` options:
//   --out FILE     write campaign datasets there (default: stdout)
//   --workers N    worker threads for multi-trial sweeps (0 = hardware)
//   --trials N     override the spec's trial count
//   --seed S       override the spec's base seed
//   --scale X      override the population scale (CI smoke runs use this)
//   --duration S   override the measured period, in simulated seconds
//                  (CI smoke runs pair a huge --scale with a short window)
//   --shards N     intra-trial population shards (0 = one per core); the
//                  export is byte-identical at any count (DESIGN.md §13)
//   --shard-workers N
//                  threads driving the shard fan-outs (0 = lease from the
//                  process worker budget, shared with --workers)
//   --slab SECONDS churn-chain precompute slab, in simulated seconds
//   --quiet        suppress the progress summary on stderr
//
// Single-trial runs execute on a `scenario::CampaignEngine` directly
// (through `runtime::ShardedCampaignRunner` when --shards is given);
// multi-trial sweeps go through `runtime::ParallelTrialRunner`, whose
// merged output is byte-identical to the sequential loop at any worker
// count — with --shards, each trial's engine additionally fans its
// population across shards, still without moving a byte.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/calibration.hpp"
#include "common/parse.hpp"
#include "measure/sink.hpp"
#include "runtime/parallel.hpp"
#include "runtime/sharded.hpp"
#include "runtime/testbed.hpp"
#include "scenario/campaign.hpp"
#include "scenario/scenario_spec.hpp"

namespace {

namespace fs = std::filesystem;
using ipfs::measure::JsonExportSink;
using ipfs::measure::MeasurementSink;
using ipfs::runtime::ParallelTrialRunner;
using ipfs::runtime::TrialSpec;
using ipfs::scenario::CampaignEngine;
using ipfs::scenario::ScenarioSpec;

int usage(std::ostream& out, int code) {
  out << "usage: ipfs_sim <command> [args]\n"
         "  list [DIR]               list builtin scenarios and *.json in DIR\n"
         "                           (default ./scenarios when present)\n"
         "  validate FILE...         parse + validate scenario files\n"
         "  run SCENARIO [options]   run a scenario file or builtin name\n"
         "      --out FILE --workers N --trials N --seed S --scale X\n"
         "      --duration SECONDS --shards N --shard-workers N\n"
         "      --slab SECONDS --quiet\n"
         "  export NAME|--all [--dir DIR | --out FILE]\n"
         "                           write builtin spec(s) as JSON\n"
         "  calibrate TRACE [options]\n"
         "                           fit churn distributions to a measured\n"
         "                           trace and emit a calibrated scenario\n"
         "      --out FILE           scenario destination (default: stdout)\n"
         "      --report FILE        write the JSON fit report there\n"
         "      --gap SECONDS        session gap threshold (default 1800)\n"
         "      --name NAME          emitted scenario name (default calibrated)\n"
         "      --seed S --verify-scale X --ks-threshold D --no-verify --quiet\n"
         "  selftest                 run a tiny testbed experiment\n";
  return code;
}

// Strict option parsing (common/parse.hpp): the whole token must parse,
// negatives / trailing garbage / inf / overflow are rejected, and the
// error names the option — "--shards: trailing characters after number:
// '4x'" instead of a silently truncated value or a misleading "unknown
// option".

bool option_u32(const std::string& option, const std::string& text,
                std::uint32_t& out) {
  const auto parsed = ipfs::common::parse_u64(text);
  if (!parsed) {
    std::cerr << "ipfs_sim run: " << option << ": " << parsed.error() << "\n";
    return false;
  }
  if (*parsed > std::numeric_limits<std::uint32_t>::max()) {
    std::cerr << "ipfs_sim run: " << option << ": out of range: '" << text
              << "'\n";
    return false;
  }
  out = static_cast<std::uint32_t>(*parsed);
  return true;
}

bool option_u64(const std::string& option, const std::string& text,
                std::uint64_t& out) {
  const auto parsed = ipfs::common::parse_u64(text);
  if (!parsed) {
    std::cerr << "ipfs_sim run: " << option << ": " << parsed.error() << "\n";
    return false;
  }
  out = *parsed;
  return true;
}

bool option_positive(const std::string& option, const std::string& text,
                     double& out) {
  const auto parsed = ipfs::common::parse_finite_double(text);
  if (!parsed) {
    std::cerr << "ipfs_sim run: " << option << ": " << parsed.error() << "\n";
    return false;
  }
  if (*parsed <= 0.0) {
    std::cerr << "ipfs_sim run: " << option << ": must be > 0, got '" << text
              << "'\n";
    return false;
  }
  out = *parsed;
  return true;
}

/// A SCENARIO argument: an existing file path, else a builtin name.
std::optional<ScenarioSpec> load_scenario(const std::string& ref,
                                          std::string& error) {
  if (fs::exists(ref)) {
    auto spec = ScenarioSpec::from_file(ref);
    if (!spec) {
      error = spec.error();
      return std::nullopt;
    }
    return *spec;
  }
  if (auto spec = ScenarioSpec::builtin(ref)) return spec;
  error = ref + ": no such file and not a builtin scenario (see ipfs_sim list)";
  return std::nullopt;
}

// ---- list -------------------------------------------------------------------

int cmd_list(const std::vector<std::string>& args) {
  std::cout << "builtin scenarios:\n";
  for (const ScenarioSpec& spec : ScenarioSpec::builtins()) {
    // Flag workloads that reshape the fabric (DESIGN.md §9), animate a
    // peer lifecycle (§10), route content (§11), or vary over time (§14).
    std::cout << "  " << spec.name << (spec.network ? "  [conditions]" : "")
              << (spec.churn ? "  [churn]" : "")
              << (spec.content ? "  [content]" : "")
              << (spec.phases ? "  [phases]" : "") << "\n      "
              << spec.description << "\n";
  }
  const std::string dir = args.empty() ? "scenarios" : args[0];
  if (!fs::is_directory(dir)) {
    if (!args.empty()) {
      std::cerr << "ipfs_sim list: " << dir << " is not a directory\n";
      return 1;
    }
    return 0;
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::cout << "\nscenario files in " << dir << "/:\n";
  for (const fs::path& file : files) {
    auto spec = ScenarioSpec::from_file(file.string());
    if (spec) {
      std::cout << "  " << file.string() << "  (" << spec->name << ")\n";
    } else {
      std::cout << "  " << file.string() << "  [invalid: " << spec.error() << "]\n";
    }
  }
  return 0;
}

// ---- validate ---------------------------------------------------------------

int cmd_validate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "ipfs_sim validate: no files given\n";
    return 2;
  }
  int failures = 0;
  for (const std::string& path : args) {
    auto spec = ScenarioSpec::from_file(path);
    if (spec) {
      std::cout << "OK    " << path << "  (" << spec->name << ", "
                << spec->campaign.trials
                << (spec->campaign.trials == 1 ? " trial)" : " trials)") << "\n";
    } else {
      std::cout << "FAIL  " << spec.error() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// ---- run --------------------------------------------------------------------

/// Streams a short progress line per published event to stderr.
class ProgressSink final : public MeasurementSink {
 public:
  void on_run_begin(const std::string& description) override {
    std::cerr << "== " << description << "\n";
  }
  void on_crawl(const ipfs::measure::CrawlObservation& crawl) override {
    ++crawls_;
    (void)crawl;
  }
  void on_population(const ipfs::measure::PopulationSample& sample) override {
    ++population_samples_;
    (void)sample;
  }
  void on_provide(const ipfs::measure::ProvideSample& sample) override {
    ++provides_;
    (void)sample;
  }
  void on_fetch(const ipfs::measure::FetchSample& sample) override {
    ++fetches_;
    (void)sample;
  }
  void on_content(const ipfs::measure::ContentSample& sample) override {
    ++content_samples_;
    (void)sample;
  }
  void on_dataset(ipfs::measure::DatasetRole role,
                  ipfs::measure::Dataset dataset) override {
    std::cerr << "   dataset " << ipfs::measure::to_string(role) << " ("
              << dataset.vantage << "): " << dataset.peer_count() << " peers, "
              << dataset.connection_count() << " connections\n";
  }
  void on_run_end(const ipfs::measure::RunSummary& summary) override {
    std::cerr << "   population " << summary.population_size << ", "
              << summary.events_executed << " events, " << crawls_
              << " crawl snapshots";
    if (population_samples_ > 0) {
      std::cerr << ", " << population_samples_ << " churn population samples";
    }
    if (provides_ > 0 || fetches_ > 0) {
      std::cerr << ", " << provides_ << " provides, " << fetches_
                << " fetches, " << content_samples_ << " record samples";
    }
    std::cerr << "\n";
    crawls_ = 0;
    population_samples_ = 0;
    provides_ = 0;
    fetches_ = 0;
    content_samples_ = 0;
  }

 private:
  std::size_t crawls_ = 0;
  std::size_t population_samples_ = 0;
  std::size_t provides_ = 0;
  std::size_t fetches_ = 0;
  std::size_t content_samples_ = 0;
};

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "ipfs_sim run: missing SCENARIO argument\n";
    return 2;
  }
  const std::string& ref = args[0];
  std::optional<std::string> out_path;
  std::optional<std::uint32_t> workers_override;
  std::optional<std::uint32_t> trials_override;
  std::optional<std::uint64_t> seed_override;
  std::optional<double> scale_override;
  std::optional<double> duration_override;  // simulated seconds
  std::optional<std::uint32_t> shards;
  std::uint32_t shard_workers = 0;        // 0 = lease from the worker budget
  std::optional<double> slab_seconds;     // simulated seconds
  bool quiet = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    const bool takes_value =
        arg == "--out" || arg == "--workers" || arg == "--trials" ||
        arg == "--seed" || arg == "--scale" || arg == "--duration" ||
        arg == "--shards" || arg == "--shard-workers" || arg == "--slab";
    if (!takes_value) {
      std::cerr << "ipfs_sim run: unknown option '" << arg << "'\n";
      return 2;
    }
    if (i + 1 >= args.size()) {
      // A flag at the end of the line used to fall through to "unknown
      // option"; name the real problem.
      std::cerr << "ipfs_sim run: " << arg << ": missing value\n";
      return 2;
    }
    const std::string& value = args[++i];
    if (arg == "--out") {
      out_path = value;
    } else if (arg == "--workers") {
      std::uint32_t workers = 0;
      if (!option_u32(arg, value, workers)) return 2;
      workers_override = workers;
    } else if (arg == "--trials") {
      std::uint32_t trials = 0;
      if (!option_u32(arg, value, trials)) return 2;
      trials_override = trials;
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!option_u64(arg, value, seed)) return 2;
      seed_override = seed;
    } else if (arg == "--scale") {
      double scale = 0.0;
      if (!option_positive(arg, value, scale)) return 2;
      scale_override = scale;
    } else if (arg == "--duration") {
      double seconds = 0.0;
      if (!option_positive(arg, value, seconds)) return 2;
      duration_override = seconds;
    } else if (arg == "--shards") {
      std::uint32_t count = 0;
      if (!option_u32(arg, value, count)) return 2;
      shards = count;
    } else if (arg == "--shard-workers") {
      if (!option_u32(arg, value, shard_workers)) return 2;
    } else {  // --slab
      double seconds = 0.0;
      if (!option_positive(arg, value, seconds)) return 2;
      slab_seconds = seconds;
    }
  }
  if ((shard_workers != 0 || slab_seconds) && !shards) {
    std::cerr << "ipfs_sim run: --shard-workers/--slab need --shards\n";
    return 2;
  }

  std::string error;
  auto loaded = load_scenario(ref, error);
  if (!loaded) {
    std::cerr << "ipfs_sim run: " << error << "\n";
    return 1;
  }
  ScenarioSpec spec = std::move(*loaded);
  if (workers_override) spec.campaign.workers = *workers_override;
  if (trials_override) spec.campaign.trials = *trials_override;
  if (seed_override) spec.campaign.seed = *seed_override;
  if (scale_override) spec.population.scale = *scale_override;
  if (duration_override) {
    spec.period.duration = ipfs::common::from_seconds(*duration_override);
  }
  if (auto invalid = ScenarioSpec::validate(spec)) {
    std::cerr << "ipfs_sim run: " << *invalid << "\n";
    return 1;
  }

  std::ofstream file_out;
  if (out_path) {
    file_out.open(*out_path);
    if (!file_out) {
      std::cerr << "ipfs_sim run: cannot open " << *out_path << " for writing\n";
      return 1;
    }
  }
  std::ostream& data_out = out_path ? file_out : std::cout;

  JsonExportSink export_sink(data_out, spec.output.export_options());
  ProgressSink progress;
  ipfs::measure::FanOutSink sink;
  // FanOutSink copies datasets for all but the last sink: register the
  // cheap progress reader first so the export sink receives the move.
  if (!quiet) sink.add(progress);
  sink.add(export_sink);

  if (!quiet) {
    std::cerr << "scenario " << spec.name << ": " << spec.campaign.trials
              << (spec.campaign.trials == 1 ? " trial" : " trials") << ", scale "
              << spec.population.scale << ", seed " << spec.campaign.seed << "\n";
  }

  // --shards resolves to a ShardPlan through the sharded runner, so
  // defaults (0 -> one shard per core, 6 h slab) live in one place.
  ipfs::runtime::ShardedCampaignRunner::Options shard_options;
  if (shards) {
    shard_options.shards = *shards;
    shard_options.workers = shard_workers;
    if (slab_seconds) {
      shard_options.slab = ipfs::common::from_seconds(*slab_seconds);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  if (spec.campaign.trials == 1) {
    if (shards) {
      ipfs::runtime::ShardedCampaignRunner runner(shard_options);
      auto outcome = runner.run(spec.to_campaign_config(), sink);
      if (!outcome) {
        std::cerr << "ipfs_sim run: " << outcome.error() << "\n";
        return 1;
      }
    } else {
      auto engine = CampaignEngine::create(spec.to_campaign_config());
      if (!engine) {
        std::cerr << "ipfs_sim run: " << engine.error() << "\n";
        return 1;
      }
      engine->run(sink);
    }
  } else {
    const auto seeds = spec.trial_seeds();
    ParallelTrialRunner::Options options;
    options.workers = spec.campaign.workers;
    ParallelTrialRunner runner(options);
    auto base = spec.to_campaign_config();
    if (shards) {
      // Each trial's engine shards its population; auto worker counts
      // lease from the same process budget the trial pool draws on, so
      // trials x shards never oversubscribes the machine.
      base.sharding =
          ipfs::runtime::ShardedCampaignRunner(shard_options).resolve_plan();
    }
    auto outcome =
        runner.run(ParallelTrialRunner::seed_sweep(std::move(base), seeds), sink);
    if (!outcome) {
      std::cerr << "ipfs_sim run: " << outcome.error() << "\n";
      return 1;
    }
  }
  data_out.flush();
  if (!data_out) {
    std::cerr << "ipfs_sim run: error writing "
              << (out_path ? *out_path : std::string("stdout")) << "\n";
    return 1;
  }
  if (!quiet) {
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    std::cerr << "done in " << elapsed.count() << " s ("
              << export_sink.exported_count() << " datasets exported";
    if (out_path) std::cerr << " to " << *out_path;
    std::cerr << ")\n";
  }
  return 0;
}

// ---- export -----------------------------------------------------------------

int export_one(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ipfs_sim export: cannot open " << path << " for writing\n";
    return 1;
  }
  out << spec.to_json_string();
  std::cout << "wrote " << path << "\n";
  return 0;
}

std::string file_name_for(const ScenarioSpec& spec) {
  std::string file = spec.name;
  for (char& c : file) {
    if (c == '-') c = '_';
  }
  return file + ".json";
}

int cmd_export(const std::vector<std::string>& args) {
  bool all = false;
  std::optional<std::string> name;
  std::string dir = "scenarios";
  std::optional<std::string> out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const bool has_value = i + 1 < args.size();
    if (arg == "--all") {
      all = true;
    } else if (arg == "--dir" && has_value) {
      dir = args[++i];
    } else if (arg == "--out" && has_value) {
      out_path = args[++i];
    } else if (!arg.starts_with("--") && !name) {
      name = arg;
    } else {
      std::cerr << "ipfs_sim export: unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (all == name.has_value()) {
    std::cerr << "ipfs_sim export: pass exactly one of NAME or --all\n";
    return 2;
  }
  if (all) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    for (const ScenarioSpec& spec : ScenarioSpec::builtins()) {
      const std::string path = (fs::path(dir) / file_name_for(spec)).string();
      if (const int code = export_one(spec, path); code != 0) return code;
    }
    return 0;
  }
  const auto spec = ScenarioSpec::builtin(*name);
  if (!spec) {
    std::cerr << "ipfs_sim export: no builtin named '" << *name << "'\n";
    return 1;
  }
  if (out_path) return export_one(*spec, *out_path);
  std::cout << spec->to_json_string();
  return 0;
}

// ---- calibrate --------------------------------------------------------------

int cmd_calibrate(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "ipfs_sim calibrate: missing TRACE argument\n";
    return 2;
  }
  const std::string& trace_path = args[0];
  std::optional<std::string> out_path;
  std::optional<std::string> report_path;
  ipfs::analysis::calibrate::Options options;
  bool quiet = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--no-verify") {
      options.verify = false;
      continue;
    }
    const bool takes_value = arg == "--out" || arg == "--report" ||
                             arg == "--gap" || arg == "--name" ||
                             arg == "--seed" || arg == "--verify-scale" ||
                             arg == "--ks-threshold";
    if (!takes_value) {
      std::cerr << "ipfs_sim calibrate: unknown option '" << arg << "'\n";
      return 2;
    }
    if (i + 1 >= args.size()) {
      std::cerr << "ipfs_sim calibrate: " << arg << ": missing value\n";
      return 2;
    }
    const std::string& value = args[++i];
    if (arg == "--out") {
      out_path = value;
    } else if (arg == "--report") {
      report_path = value;
    } else if (arg == "--name") {
      options.name = value;
    } else if (arg == "--seed") {
      if (!option_u64(arg, value, options.seed)) return 2;
    } else if (arg == "--gap") {
      double gap_seconds = 0.0;
      if (!option_positive(arg, value, gap_seconds)) return 2;
      options.max_gap = static_cast<ipfs::common::SimDuration>(
          gap_seconds * ipfs::common::kSecond);
    } else if (arg == "--verify-scale") {
      if (!option_positive(arg, value, options.verify_scale)) return 2;
    } else if (arg == "--ks-threshold") {
      if (!option_positive(arg, value, options.ks_threshold)) return 2;
    }
  }

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) {
    std::cerr << "ipfs_sim calibrate: cannot read " << trace_path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string trace_text = buffer.str();

  const auto result = ipfs::analysis::calibrate::run(trace_text, options);
  if (!result) {
    std::cerr << "ipfs_sim calibrate: " << trace_path << ": " << result.error()
              << "\n";
    return 2;
  }

  if (!quiet) {
    const auto& measured = result->measured;
    std::cerr << "== calibrate " << trace_path << " (vantage '"
              << result->trace.vantage << "')\n"
              << "   " << result->trace.peer_count() << " peers, "
              << result->trace.connection_count() << " connections -> "
              << measured.session_count << " sessions ("
              << measured.censored_sessions << " censored)\n";
    for (const auto& [name, group] : result->groups) {
      std::cerr << "   " << name << ": session="
                << (group.session.any_ok() ? group.session.selected : "none")
                << " gap="
                << (group.gap.any_ok() ? group.gap.selected : "none") << "\n";
    }
    if (result->loop.ran) {
      std::cerr << "   closed loop: " << result->loop.simulated_sessions
                << " re-simulated sessions, KS " << result->loop.ks
                << " (threshold " << result->loop.threshold << ") -> "
                << (result->loop.pass ? "pass" : "FAIL") << "\n";
    }
  }

  if (out_path) {
    std::ofstream out(*out_path, std::ios::binary);
    if (!out) {
      std::cerr << "ipfs_sim calibrate: cannot write " << *out_path << "\n";
      return 1;
    }
    out << result->scenario.to_json_string();
  } else {
    std::cout << result->scenario.to_json_string();
  }
  if (report_path) {
    std::ofstream report(*report_path, std::ios::binary);
    if (!report) {
      std::cerr << "ipfs_sim calibrate: cannot write " << *report_path << "\n";
      return 1;
    }
    report << result->report_json();
  }
  if (result->loop.ran && !result->loop.pass) {
    std::cerr << "ipfs_sim calibrate: closed-loop KS " << result->loop.ks
              << " exceeds threshold " << result->loop.threshold << "\n";
    return 1;
  }
  return 0;
}

// ---- selftest ---------------------------------------------------------------

int cmd_selftest() {
  // A miniature testbed experiment through the runtime facade: one
  // instrumented vantage, a small bootstrapped population, 30 simulated
  // minutes.  Exercises the build end-to-end without a scenario file.
  namespace runtime = ipfs::runtime;
  namespace node = ipfs::node;
  auto testbed = runtime::TestbedBuilder().seed(42).build();
  auto vantage = testbed.add_server(node::NodeConfig::dht_server(8, 12));
  auto& recorder = vantage.attach_recorder();
  testbed.add_servers(6).add_clients(4).bootstrap_all_via(vantage);
  testbed.run_for(30 * ipfs::common::kMinute);
  recorder.finish();
  const auto dataset = recorder.take_dataset();
  std::cout << "selftest: " << testbed.node_count() << " nodes, "
            << dataset.peer_count() << " observed peers, "
            << dataset.connection_count() << " connections, "
            << testbed.simulation().executed_events() << " events\n";
  if (dataset.peer_count() == 0) {
    std::cerr << "selftest: vantage observed nothing — build is broken\n";
    return 1;
  }
  std::cout << "selftest passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "help" || command == "--help" || command == "-h") {
    return usage(std::cout, 0);
  }
  if (command == "list") return cmd_list(args);
  if (command == "validate") return cmd_validate(args);
  if (command == "run") return cmd_run(args);
  if (command == "export") return cmd_export(args);
  if (command == "calibrate") return cmd_calibrate(args);
  if (command == "selftest") return cmd_selftest();
  std::cerr << "ipfs_sim: unknown command '" << command << "'\n";
  return usage(std::cerr, 2);
}
